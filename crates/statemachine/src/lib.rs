//! # statemachine — executable timed hierarchical state machines
//!
//! The modeling substrate of the `trader-rs` reproduction of the Trader
//! project (Brinksma & Hooman, DATE 2008). The paper's run-time awareness
//! approach executes a *model of desired system behaviour* next to the
//! running product; industrial practice there used Stateflow models with
//! generated C code. This crate provides the equivalent artifact natively:
//! hierarchical state machines with events, guards, actions, variables, and
//! **timed** (`after(t)`) transitions, executed with run-to-completion
//! semantics on simulated time.
//!
//! The paper explicitly chooses *executable timed state machines* over timed
//! temporal logic "to promote industrial acceptance and validation"
//! (Sect. 4.3); the model you build here is the exact artifact the
//! [`Executor`] runs at run time.
//!
//! ## Quickstart
//!
//! ```
//! use statemachine::{MachineBuilder, Event, Executor, Value};
//!
//! let machine = MachineBuilder::new("toggle")
//!     .state("off")
//!     .state("on")
//!     .initial("off")
//!     .output("light")
//!     .on("off", "press", "on", |t| t.output_const("light", Value::from(1)))
//!     .on("on", "press", "off", |t| t.output_const("light", Value::from(0)))
//!     .build()
//!     .expect("valid machine");
//!
//! let mut exec = Executor::new(&machine);
//! exec.start();
//! exec.step(&Event::plain("press"));
//! assert_eq!(exec.active_leaf_name(), "on");
//! assert_eq!(exec.last_output("light"), Some(&Value::from(1)));
//! ```
//!
//! ## Modules
//!
//! * [`value`] — dynamic values for variables, payloads and outputs.
//! * [`event`] — named events with optional payloads.
//! * [`expr`] — guard/action expression trees, interpreted at run time.
//! * [`state`] / [`transition`] — the static structure.
//! * [`machine`] — a validated machine definition.
//! * [`builder`] — ergonomic construction.
//! * [`executor`] — run-to-completion execution on simulated time.
//! * [`validate`] — model-quality checks (unreachable states,
//!   nondeterminism, undeclared variables) — the modeling pitfalls the
//!   paper reports (feature-interaction mistakes) surface here.
//! * [`script`] — test scripts against a model, per the paper's
//!   model-quality workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod event;
pub mod executor;
pub mod expr;
pub mod machine;
pub mod script;
pub mod state;
pub mod transition;
pub mod validate;
pub mod value;

pub use builder::{BuildError, MachineBuilder, TransitionBuilder};
pub use event::Event;
pub use executor::{Executor, OutputRecord};
pub use expr::{EvalError, Expr};
pub use machine::Machine;
pub use script::{ScriptOutcome, ScriptStep, TestScript};
pub use state::{StateId, StateKind};
pub use transition::{Action, Transition, Trigger};
pub use validate::{ModelIssue, Severity};
pub use value::Value;
