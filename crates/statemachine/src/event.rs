//! Named events with optional payloads.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An event delivered to (or emitted by) a machine.
///
/// ```
/// use statemachine::{Event, Value};
/// let plain = Event::plain("power");
/// let keyed = Event::with_payload("digit", Value::from(7));
/// assert_eq!(plain.name, "power");
/// assert_eq!(keyed.payload, Some(Value::Int(7)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event name, matched against [`Trigger::On`](crate::Trigger::On).
    pub name: String,
    /// Optional payload, readable by guards/actions via
    /// [`Expr::Payload`](crate::Expr::Payload).
    pub payload: Option<Value>,
}

impl Event {
    /// Creates a payload-less event.
    pub fn plain(name: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            payload: None,
        }
    }

    /// Creates an event carrying a payload.
    pub fn with_payload(name: impl Into<String>, payload: impl Into<Value>) -> Self {
        Event {
            name: name.into(),
            payload: Some(payload.into()),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            Some(p) => write!(f, "{}({})", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Event::plain("up");
        assert_eq!(e.name, "up");
        assert!(e.payload.is_none());
        let e = Event::with_payload("digit", 3);
        assert_eq!(e.payload, Some(Value::Int(3)));
    }

    #[test]
    fn display() {
        assert_eq!(Event::plain("up").to_string(), "up");
        assert_eq!(Event::with_payload("d", 3).to_string(), "d(3)");
    }
}
