//! Test scripts against a model.
//!
//! The paper (Sect. 4.2) uses executable models plus test scripts to
//! improve confidence in model fidelity before deploying the model as a
//! run-time component. A [`TestScript`] is a linear scenario of time
//! advances, injected events, and expectations about states, variables and
//! outputs; running it yields a [`ScriptOutcome`] listing every violated
//! expectation.

use crate::event::Event;
use crate::executor::Executor;
use crate::machine::Machine;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::fmt;

/// One step of a test script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptStep {
    /// Advance model time by this much.
    Advance(SimDuration),
    /// Inject an event.
    Inject(Event),
    /// Expect the active leaf state to have this name.
    ExpectState(String),
    /// Expect the named state to be active (leaf or ancestor).
    ExpectActive(String),
    /// Expect a variable to hold a value.
    ExpectVar(String, Value),
    /// Expect the most recent value of an output.
    ExpectOutput(String, Value),
    /// Expect that an output has never been produced so far.
    ExpectNoOutput(String),
}

/// A violated expectation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptFailure {
    /// Index of the failing step.
    pub step: usize,
    /// Model time when the step ran.
    pub time: SimTime,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} at {}: {}", self.step, self.time, self.message)
    }
}

/// The result of running a script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptOutcome {
    /// Steps executed.
    pub steps_run: usize,
    /// Violated expectations, in order.
    pub failures: Vec<ScriptFailure>,
    /// Model evaluation errors accumulated during the run.
    pub model_errors: Vec<String>,
}

impl ScriptOutcome {
    /// True when every expectation held and the model raised no errors.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.model_errors.is_empty()
    }
}

/// A linear test scenario for a machine.
///
/// ```
/// use statemachine::{MachineBuilder, TestScript, ScriptStep, Event, Value};
///
/// let m = MachineBuilder::new("m")
///     .state("off").state("on").initial("off")
///     .output("light")
///     .on("off", "press", "on", |t| t.output_const("light", 1))
///     .build().unwrap();
///
/// let script = TestScript::new("turn-on")
///     .inject(Event::plain("press"))
///     .expect_state("on")
///     .expect_output("light", Value::from(1));
/// assert!(script.run(&m).passed());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestScript {
    /// Script name (for reporting).
    pub name: String,
    /// Steps in execution order.
    pub steps: Vec<ScriptStep>,
}

impl TestScript {
    /// Starts an empty script.
    pub fn new(name: impl Into<String>) -> Self {
        TestScript {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a raw step.
    pub fn step(mut self, step: ScriptStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Appends a time advance.
    pub fn advance(self, d: SimDuration) -> Self {
        self.step(ScriptStep::Advance(d))
    }

    /// Appends an event injection.
    pub fn inject(self, event: Event) -> Self {
        self.step(ScriptStep::Inject(event))
    }

    /// Appends a leaf-state expectation.
    pub fn expect_state(self, name: impl Into<String>) -> Self {
        self.step(ScriptStep::ExpectState(name.into()))
    }

    /// Appends an active-state expectation.
    pub fn expect_active(self, name: impl Into<String>) -> Self {
        self.step(ScriptStep::ExpectActive(name.into()))
    }

    /// Appends a variable expectation.
    pub fn expect_var(self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.step(ScriptStep::ExpectVar(name.into(), value.into()))
    }

    /// Appends an output expectation.
    pub fn expect_output(self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.step(ScriptStep::ExpectOutput(name.into(), value.into()))
    }

    /// Appends a no-output expectation.
    pub fn expect_no_output(self, name: impl Into<String>) -> Self {
        self.step(ScriptStep::ExpectNoOutput(name.into()))
    }

    /// Runs the script against a fresh executor of `machine`.
    pub fn run(&self, machine: &Machine) -> ScriptOutcome {
        let mut exec = Executor::new(machine);
        exec.start();
        let mut failures = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let fail = |message: String, exec: &Executor<'_>| ScriptFailure {
                step: i,
                time: exec.now(),
                message,
            };
            match step {
                ScriptStep::Advance(d) => {
                    let target = exec.now() + *d;
                    exec.advance_to(target);
                }
                ScriptStep::Inject(ev) => exec.step(ev),
                ScriptStep::ExpectState(name) => {
                    let actual = exec.active_leaf_name().to_owned();
                    if &actual != name {
                        failures.push(fail(
                            format!("expected leaf state `{name}`, in `{actual}`"),
                            &exec,
                        ));
                    }
                }
                ScriptStep::ExpectActive(name) => {
                    if !exec.is_active(name) {
                        failures.push(fail(format!("state `{name}` not active"), &exec));
                    }
                }
                ScriptStep::ExpectVar(name, expected) => match exec.var(name) {
                    Some(actual) if actual == expected => {}
                    Some(actual) => failures.push(fail(
                        format!("var `{name}` = {actual}, expected {expected}"),
                        &exec,
                    )),
                    None => failures.push(fail(format!("var `{name}` missing"), &exec)),
                },
                ScriptStep::ExpectOutput(name, expected) => match exec.last_output(name) {
                    Some(actual) if actual == expected => {}
                    Some(actual) => failures.push(fail(
                        format!("output `{name}` = {actual}, expected {expected}"),
                        &exec,
                    )),
                    None => failures.push(fail(format!("output `{name}` never produced"), &exec)),
                },
                ScriptStep::ExpectNoOutput(name) => {
                    if exec.last_output(name).is_some() {
                        failures.push(fail(format!("output `{name}` was produced"), &exec));
                    }
                }
            }
        }
        ScriptOutcome {
            steps_run: self.steps.len(),
            failures,
            model_errors: exec.errors().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MachineBuilder;
    use crate::expr::Expr;

    fn machine() -> Machine {
        MachineBuilder::new("vol")
            .state("idle")
            .state("muted")
            .initial("idle")
            .var("level", 10)
            .output("audio")
            .on("idle", "up", "idle", |t| {
                t.assign("level", Expr::var("level").add(Expr::lit(1)))
                    .output("audio", Expr::var("level"))
            })
            .on("idle", "mute", "muted", |t| t.output_const("audio", 0))
            .on("muted", "mute", "idle", |t| {
                t.output("audio", Expr::var("level"))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn passing_script() {
        let m = machine();
        let outcome = TestScript::new("s")
            .inject(Event::plain("up"))
            .expect_var("level", 11)
            .expect_output("audio", 11)
            .inject(Event::plain("mute"))
            .expect_state("muted")
            .expect_output("audio", 0)
            .inject(Event::plain("mute"))
            .expect_state("idle")
            .expect_output("audio", 11)
            .run(&m);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.steps_run, 9);
    }

    #[test]
    fn failing_expectation_reported_with_step() {
        let m = machine();
        let outcome = TestScript::new("s")
            .inject(Event::plain("up"))
            .expect_var("level", 99)
            .run(&m);
        assert!(!outcome.passed());
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].step, 1);
        assert!(outcome.failures[0].message.contains("level"));
    }

    #[test]
    fn no_output_expectation() {
        let m = machine();
        let outcome = TestScript::new("s").expect_no_output("audio").run(&m);
        assert!(outcome.passed());
        let outcome = TestScript::new("s")
            .inject(Event::plain("up"))
            .expect_no_output("audio")
            .run(&m);
        assert!(!outcome.passed());
    }

    #[test]
    fn missing_var_reported() {
        let m = machine();
        let outcome = TestScript::new("s").expect_var("ghost", 0).run(&m);
        assert!(outcome.failures[0].message.contains("missing"));
    }

    #[test]
    fn advance_steps_time() {
        let m = machine();
        let outcome = TestScript::new("s")
            .advance(SimDuration::from_millis(5))
            .advance(SimDuration::from_millis(5))
            .run(&m);
        assert!(outcome.passed());
    }

    #[test]
    fn failure_display() {
        let f = ScriptFailure {
            step: 2,
            time: SimTime::from_millis(1),
            message: "x".into(),
        };
        assert_eq!(f.to_string(), "step 2 at 1.000ms: x");
    }
}
