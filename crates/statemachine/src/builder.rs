//! Ergonomic construction of machines.

use crate::expr::Expr;
use crate::machine::Machine;
use crate::state::{State, StateId, StateKind};
use crate::transition::{Action, Transition, Trigger};
use crate::value::Value;
use simkit::SimDuration;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors detected while assembling a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two states share a name.
    DuplicateState(String),
    /// A referenced state name does not exist.
    UnknownState {
        /// The missing name.
        name: String,
        /// Where it was referenced.
        context: &'static str,
    },
    /// No top-level initial state was declared.
    NoInitial,
    /// The top-level initial state has a parent.
    InitialNotTopLevel(String),
    /// A composite state lacks an initial child.
    CompositeWithoutInitial(String),
    /// A declared initial child is not a direct child of its composite.
    InitialNotChild {
        /// The composite state.
        parent: String,
        /// The declared (non-)child.
        child: String,
    },
    /// The machine declares no states.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateState(n) => write!(f, "duplicate state `{n}`"),
            BuildError::UnknownState { name, context } => {
                write!(f, "unknown state `{name}` referenced by {context}")
            }
            BuildError::NoInitial => write!(f, "no top-level initial state declared"),
            BuildError::InitialNotTopLevel(n) => {
                write!(f, "initial state `{n}` is not top-level")
            }
            BuildError::CompositeWithoutInitial(n) => {
                write!(f, "composite state `{n}` has no initial child")
            }
            BuildError::InitialNotChild { parent, child } => {
                write!(f, "`{child}` is not a direct child of `{parent}`")
            }
            BuildError::Empty => write!(f, "machine has no states"),
        }
    }
}

impl std::error::Error for BuildError {}

#[derive(Debug, Clone)]
struct PendingState {
    name: String,
    parent: Option<String>,
    entry: Vec<Action>,
    exit: Vec<Action>,
    compare_enabled: bool,
}

#[derive(Debug, Clone)]
struct PendingTransition {
    source: String,
    target: String,
    trigger: Trigger,
    guard: Option<Expr>,
    actions: Vec<Action>,
}

/// Configures one transition inside a [`MachineBuilder::on`]-style call.
#[derive(Debug, Default)]
pub struct TransitionBuilder {
    guard: Option<Expr>,
    actions: Vec<Action>,
}

impl TransitionBuilder {
    /// Adds a boolean guard.
    pub fn guard(mut self, guard: Expr) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Adds a variable assignment action.
    pub fn assign(mut self, var: impl Into<String>, value: Expr) -> Self {
        self.actions.push(Action::Assign(var.into(), value));
        self
    }

    /// Adds an internal-event emission.
    pub fn emit(mut self, event: impl Into<String>) -> Self {
        self.actions.push(Action::Emit(event.into(), None));
        self
    }

    /// Adds an internal-event emission with a payload expression.
    pub fn emit_payload(mut self, event: impl Into<String>, payload: Expr) -> Self {
        self.actions.push(Action::Emit(event.into(), Some(payload)));
        self
    }

    /// Adds an observable-output action.
    pub fn output(mut self, name: impl Into<String>, value: Expr) -> Self {
        self.actions.push(Action::Output(name.into(), value));
        self
    }

    /// Adds an observable-output action with a constant value.
    pub fn output_const(self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.output(name, Expr::Const(value.into()))
    }
}

/// Builds a [`Machine`] from named states and transitions.
///
/// ```
/// use statemachine::{MachineBuilder, Expr, Value};
///
/// let m = MachineBuilder::new("volume")
///     .state("active")
///     .initial("active")
///     .var("level", Value::from(20))
///     .output("audio")
///     .on("active", "vol_up", "active", |t| {
///         t.assign("level", Expr::var("level").add(Expr::lit(1)).clamp(Expr::lit(0), Expr::lit(100)))
///          .output("audio", Expr::var("level"))
///     })
///     .build()?;
/// assert_eq!(m.states().len(), 1);
/// # Ok::<(), statemachine::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    states: Vec<PendingState>,
    transitions: Vec<PendingTransition>,
    child_initials: Vec<(String, String)>,
    initial: Option<String>,
    vars: BTreeMap<String, Value>,
    outputs: BTreeSet<String>,
}

impl MachineBuilder {
    /// Starts a builder for a machine called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            states: Vec::new(),
            transitions: Vec::new(),
            child_initials: Vec::new(),
            initial: None,
            vars: BTreeMap::new(),
            outputs: BTreeSet::new(),
        }
    }

    fn push_state(mut self, name: String, parent: Option<String>) -> Self {
        self.states.push(PendingState {
            name,
            parent,
            entry: Vec::new(),
            exit: Vec::new(),
            compare_enabled: true,
        });
        self
    }

    /// Declares a top-level state.
    pub fn state(self, name: impl Into<String>) -> Self {
        self.push_state(name.into(), None)
    }

    /// Declares a state nested inside `parent`.
    pub fn child_state(self, parent: impl Into<String>, name: impl Into<String>) -> Self {
        self.push_state(name.into(), Some(parent.into()))
    }

    /// Declares which child a composite state enters by default.
    pub fn child_initial(mut self, parent: impl Into<String>, child: impl Into<String>) -> Self {
        self.child_initials.push((parent.into(), child.into()));
        self
    }

    /// Declares the top-level initial state.
    pub fn initial(mut self, name: impl Into<String>) -> Self {
        self.initial = Some(name.into());
        self
    }

    /// Declares a model variable with its initial value.
    pub fn var(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.vars.insert(name.into(), value.into());
        self
    }

    /// Declares an observable output.
    pub fn output(mut self, name: impl Into<String>) -> Self {
        self.outputs.insert(name.into());
        self
    }

    /// Adds an entry action to a state.
    pub fn entry(mut self, state: impl Into<String>, action: Action) -> Self {
        let state = state.into();
        if let Some(s) = self.states.iter_mut().find(|s| s.name == state) {
            s.entry.push(action);
        }
        self
    }

    /// Adds an exit action to a state.
    pub fn exit(mut self, state: impl Into<String>, action: Action) -> Self {
        let state = state.into();
        if let Some(s) = self.states.iter_mut().find(|s| s.name == state) {
            s.exit.push(action);
        }
        self
    }

    /// Marks a state as *unstable*: the comparator suspends comparison
    /// while it is active (paper Sect. 4.3).
    pub fn unstable(mut self, state: impl Into<String>) -> Self {
        let state = state.into();
        if let Some(s) = self.states.iter_mut().find(|s| s.name == state) {
            s.compare_enabled = false;
        }
        self
    }

    fn push_transition(
        mut self,
        source: String,
        trigger: Trigger,
        target: String,
        configure: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        let tb = configure(TransitionBuilder::default());
        self.transitions.push(PendingTransition {
            source,
            target,
            trigger,
            guard: tb.guard,
            actions: tb.actions,
        });
        self
    }

    /// Adds an event-triggered transition.
    pub fn on(
        self,
        source: impl Into<String>,
        event: impl Into<String>,
        target: impl Into<String>,
        configure: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        self.push_transition(
            source.into(),
            Trigger::On(event.into()),
            target.into(),
            configure,
        )
    }

    /// Adds a timed (`after(d)`) transition.
    pub fn after(
        self,
        source: impl Into<String>,
        delay: SimDuration,
        target: impl Into<String>,
        configure: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        self.push_transition(
            source.into(),
            Trigger::After(delay),
            target.into(),
            configure,
        )
    }

    /// Adds an eventless transition, considered on every step.
    pub fn always(
        self,
        source: impl Into<String>,
        target: impl Into<String>,
        configure: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        self.push_transition(source.into(), Trigger::Always, target.into(), configure)
    }

    /// Assembles and structurally checks the machine.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildError`] found: duplicate or unknown state
    /// names, missing initial declarations, or an initial child that is not
    /// actually a child.
    pub fn build(self) -> Result<Machine, BuildError> {
        if self.states.is_empty() {
            return Err(BuildError::Empty);
        }
        // Name → id map, rejecting duplicates.
        let mut ids: BTreeMap<&str, StateId> = BTreeMap::new();
        for (i, st) in self.states.iter().enumerate() {
            if ids.insert(st.name.as_str(), StateId(i)).is_some() {
                return Err(BuildError::DuplicateState(st.name.clone()));
            }
        }
        let resolve = |name: &str, context: &'static str| -> Result<StateId, BuildError> {
            ids.get(name)
                .copied()
                .ok_or_else(|| BuildError::UnknownState {
                    name: name.to_owned(),
                    context,
                })
        };

        // Resolve states.
        let mut states = Vec::with_capacity(self.states.len());
        for (i, st) in self.states.iter().enumerate() {
            let parent = match &st.parent {
                Some(p) => Some(resolve(p, "child_state parent")?),
                None => None,
            };
            states.push(State {
                id: StateId(i),
                name: st.name.clone(),
                parent,
                kind: StateKind::Leaf, // fixed up below
                entry: st.entry.clone(),
                exit: st.exit.clone(),
                compare_enabled: st.compare_enabled,
            });
        }

        // Composite detection + initial children.
        let mut initial_children: BTreeMap<StateId, StateId> = BTreeMap::new();
        for (parent_name, child_name) in &self.child_initials {
            let parent = resolve(parent_name, "child_initial parent")?;
            let child = resolve(child_name, "child_initial")?;
            if states[child.0].parent != Some(parent) {
                return Err(BuildError::InitialNotChild {
                    parent: parent_name.clone(),
                    child: child_name.clone(),
                });
            }
            initial_children.insert(parent, child);
        }
        let has_children: Vec<bool> = (0..states.len())
            .map(|i| states.iter().any(|s| s.parent == Some(StateId(i))))
            .collect();
        for (i, st) in self.states.iter().enumerate() {
            if has_children[i] {
                let init_id = *initial_children
                    .get(&StateId(i))
                    .ok_or_else(|| BuildError::CompositeWithoutInitial(st.name.clone()))?;
                states[i].kind = StateKind::Composite { initial: init_id };
            }
        }

        // Top-level initial.
        let initial_name = self.initial.ok_or(BuildError::NoInitial)?;
        let initial = resolve(&initial_name, "initial")?;
        if states[initial.0].parent.is_some() {
            return Err(BuildError::InitialNotTopLevel(initial_name));
        }

        // Resolve transitions.
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for tr in &self.transitions {
            let source = resolve(&tr.source, "transition source")?;
            let target = resolve(&tr.target, "transition target")?;
            transitions.push(Transition {
                source,
                target,
                trigger: tr.trigger.clone(),
                guard: tr.guard.clone(),
                actions: tr.actions.clone(),
            });
        }

        Ok(Machine {
            name: self.name,
            states,
            transitions,
            initial,
            vars: self.vars,
            outputs: self.outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_machine_builds() {
        let m = MachineBuilder::new("m")
            .state("a")
            .initial("a")
            .build()
            .unwrap();
        assert_eq!(m.states().len(), 1);
        assert_eq!(m.initial(), StateId(0));
    }

    #[test]
    fn duplicate_state_rejected() {
        let err = MachineBuilder::new("m")
            .state("a")
            .state("a")
            .initial("a")
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DuplicateState("a".into()));
    }

    #[test]
    fn missing_initial_rejected() {
        let err = MachineBuilder::new("m").state("a").build().unwrap_err();
        assert_eq!(err, BuildError::NoInitial);
    }

    #[test]
    fn unknown_transition_target_rejected() {
        let err = MachineBuilder::new("m")
            .state("a")
            .initial("a")
            .on("a", "e", "zz", |t| t)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::UnknownState { .. }));
    }

    #[test]
    fn composite_needs_initial_child() {
        let err = MachineBuilder::new("m")
            .state("p")
            .child_state("p", "c")
            .initial("p")
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::CompositeWithoutInitial("p".into()));
    }

    #[test]
    fn initial_child_must_be_direct_child() {
        let err = MachineBuilder::new("m")
            .state("p")
            .state("q")
            .child_state("p", "c")
            .child_initial("p", "q")
            .initial("p")
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InitialNotChild { .. }));
    }

    #[test]
    fn nested_initial_must_be_top_level() {
        let err = MachineBuilder::new("m")
            .state("p")
            .child_state("p", "c")
            .child_initial("p", "c")
            .initial("c")
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::InitialNotTopLevel("c".into()));
    }

    #[test]
    fn empty_machine_rejected() {
        assert_eq!(
            MachineBuilder::new("m").build().unwrap_err(),
            BuildError::Empty
        );
    }

    #[test]
    fn transition_builder_collects_parts() {
        let m = MachineBuilder::new("m")
            .state("a")
            .state("b")
            .initial("a")
            .var("x", 0)
            .output("y")
            .on("a", "go", "b", |t| {
                t.guard(Expr::var("x").ge(Expr::lit(0)))
                    .assign("x", Expr::lit(1))
                    .emit("internal")
                    .output_const("y", 5)
            })
            .build()
            .unwrap();
        let tr = &m.transitions()[0];
        assert!(tr.guard.is_some());
        assert_eq!(tr.actions.len(), 3);
    }

    #[test]
    fn unstable_flag_set() {
        let m = MachineBuilder::new("m")
            .state("a")
            .state("busy")
            .unstable("busy")
            .initial("a")
            .build()
            .unwrap();
        assert!(m.state_by_name("a").unwrap().compare_enabled);
        assert!(!m.state_by_name("busy").unwrap().compare_enabled);
    }

    #[test]
    fn error_display_strings() {
        assert_eq!(
            BuildError::DuplicateState("x".into()).to_string(),
            "duplicate state `x`"
        );
        assert_eq!(
            BuildError::NoInitial.to_string(),
            "no top-level initial state declared"
        );
    }
}
