//! Guard and action expressions, interpreted at run time.
//!
//! Expressions are plain data (serializable), matching the paper's "models
//! as system components" idea: the model artifact the framework executes at
//! run time carries its guard logic with it, rather than compiling it away.

use crate::event::Event;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The variable context an expression evaluates against.
pub type Vars = BTreeMap<String, Value>;

/// An expression over model variables and the triggering event's payload.
///
/// ```
/// use statemachine::{Expr, Value};
/// use std::collections::BTreeMap;
///
/// let mut vars = BTreeMap::new();
/// vars.insert("volume".to_owned(), Value::Int(30));
/// let expr = Expr::var("volume").gt(Expr::lit(20));
/// assert_eq!(expr.eval(&vars, None).unwrap(), Value::Bool(true));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// The value of a model variable.
    Var(String),
    /// The payload of the triggering event (error if absent).
    Payload,
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical and (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// Logical or (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// Equality (value equality; numeric kinds compare numerically).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Less-than (numeric).
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal (numeric).
    Le(Box<Expr>, Box<Expr>),
    /// Greater-than (numeric).
    Gt(Box<Expr>, Box<Expr>),
    /// Greater-or-equal (numeric).
    Ge(Box<Expr>, Box<Expr>),
    /// Addition (Int+Int stays Int; otherwise Float).
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Clamp a numeric value into `[lo, hi]`.
    Clamp {
        /// The value to clamp.
        value: Box<Expr>,
        /// Inclusive lower bound.
        lo: Box<Expr>,
        /// Inclusive upper bound.
        hi: Box<Expr>,
    },
    /// Conditional: `if cond { then } else { otherwise }`.
    If {
        /// Boolean condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// Minimum of two numeric values.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of two numeric values.
    Max(Box<Expr>, Box<Expr>),
}

/// Errors raised while evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Referenced variable is not in the context.
    UnknownVar(String),
    /// `Payload` used but the trigger carried none.
    NoPayload,
    /// Operand had the wrong type for the operator.
    TypeMismatch {
        /// The operator that failed.
        op: &'static str,
        /// Debug rendering of the offending value.
        value: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            EvalError::NoPayload => write!(f, "event carries no payload"),
            EvalError::TypeMismatch { op, value } => {
                write!(f, "type mismatch in `{op}` on {value}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Eq(Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Ne(Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Lt(Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Le(Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Gt(Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Ge(Box::new(self), Box::new(rhs))
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `if self { then } else { otherwise }`.
    pub fn if_else(self, then: Expr, otherwise: Expr) -> Expr {
        Expr::If {
            cond: Box::new(self),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    /// `clamp(self, lo, hi)`.
    pub fn clamp(self, lo: Expr, hi: Expr) -> Expr {
        Expr::Clamp {
            value: Box::new(self),
            lo: Box::new(lo),
            hi: Box::new(hi),
        }
    }

    /// Evaluates against variable context and optional triggering event.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on unknown variables, a missing payload, or
    /// operand type mismatches.
    pub fn eval(&self, vars: &Vars, event: Option<&Event>) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => vars
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::UnknownVar(name.clone())),
            Expr::Payload => event
                .and_then(|e| e.payload.clone())
                .ok_or(EvalError::NoPayload),
            Expr::Not(e) => {
                let v = e.eval(vars, event)?;
                let b = v.as_bool().ok_or_else(|| type_err("not", &v))?;
                Ok(Value::Bool(!b))
            }
            Expr::And(a, b) => {
                let va = a.eval(vars, event)?;
                let ba = va.as_bool().ok_or_else(|| type_err("and", &va))?;
                if !ba {
                    return Ok(Value::Bool(false));
                }
                let vb = b.eval(vars, event)?;
                let bb = vb.as_bool().ok_or_else(|| type_err("and", &vb))?;
                Ok(Value::Bool(bb))
            }
            Expr::Or(a, b) => {
                let va = a.eval(vars, event)?;
                let ba = va.as_bool().ok_or_else(|| type_err("or", &va))?;
                if ba {
                    return Ok(Value::Bool(true));
                }
                let vb = b.eval(vars, event)?;
                let bb = vb.as_bool().ok_or_else(|| type_err("or", &vb))?;
                Ok(Value::Bool(bb))
            }
            Expr::Eq(a, b) => Ok(Value::Bool(values_equal(
                &a.eval(vars, event)?,
                &b.eval(vars, event)?,
            ))),
            Expr::Ne(a, b) => Ok(Value::Bool(!values_equal(
                &a.eval(vars, event)?,
                &b.eval(vars, event)?,
            ))),
            Expr::Lt(a, b) => numeric_cmp("lt", a, b, vars, event, |x, y| x < y),
            Expr::Le(a, b) => numeric_cmp("le", a, b, vars, event, |x, y| x <= y),
            Expr::Gt(a, b) => numeric_cmp("gt", a, b, vars, event, |x, y| x > y),
            Expr::Ge(a, b) => numeric_cmp("ge", a, b, vars, event, |x, y| x >= y),
            Expr::Add(a, b) => arith(
                "add",
                a,
                b,
                vars,
                event,
                |x, y| x + y,
                |x, y| x.checked_add(y),
            ),
            Expr::Sub(a, b) => arith(
                "sub",
                a,
                b,
                vars,
                event,
                |x, y| x - y,
                |x, y| x.checked_sub(y),
            ),
            Expr::Mul(a, b) => arith(
                "mul",
                a,
                b,
                vars,
                event,
                |x, y| x * y,
                |x, y| x.checked_mul(y),
            ),
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                let c = cond.eval(vars, event)?;
                let b = c.as_bool().ok_or_else(|| type_err("if", &c))?;
                if b {
                    then.eval(vars, event)
                } else {
                    otherwise.eval(vars, event)
                }
            }
            Expr::Clamp { value, lo, hi } => {
                let v = numeric("clamp", value, vars, event)?;
                let l = numeric("clamp", lo, vars, event)?;
                let h = numeric("clamp", hi, vars, event)?;
                let clamped = v.max(l).min(h);
                Ok(float_or_int(clamped, value, lo, hi, vars, event))
            }
            Expr::Min(a, b) => {
                let x = numeric("min", a, vars, event)?;
                let y = numeric("min", b, vars, event)?;
                Ok(float_or_int(x.min(y), a, b, a, vars, event))
            }
            Expr::Max(a, b) => {
                let x = numeric("max", a, vars, event)?;
                let y = numeric("max", b, vars, event)?;
                Ok(float_or_int(x.max(y), a, b, a, vars, event))
            }
        }
    }

    /// Evaluates as a boolean guard.
    ///
    /// # Errors
    ///
    /// Returns an error if evaluation fails or the result is not boolean.
    pub fn eval_bool(&self, vars: &Vars, event: Option<&Event>) -> Result<bool, EvalError> {
        let v = self.eval(vars, event)?;
        v.as_bool().ok_or_else(|| type_err("guard", &v))
    }

    /// Collects every variable name this expression references.
    pub fn referenced_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) | Expr::Payload => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Not(e) => e.referenced_vars(out),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::Gt(a, b)
            | Expr::Ge(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.referenced_vars(out);
                b.referenced_vars(out);
            }
            Expr::Clamp { value, lo, hi } => {
                value.referenced_vars(out);
                lo.referenced_vars(out);
                hi.referenced_vars(out);
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                cond.referenced_vars(out);
                then.referenced_vars(out);
                otherwise.referenced_vars(out);
            }
        }
    }
}

fn type_err(op: &'static str, v: &Value) -> EvalError {
    EvalError::TypeMismatch {
        op,
        value: format!("{v:?}"),
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

fn numeric(
    op: &'static str,
    e: &Expr,
    vars: &Vars,
    event: Option<&Event>,
) -> Result<f64, EvalError> {
    let v = e.eval(vars, event)?;
    v.as_f64().ok_or_else(|| type_err(op, &v))
}

fn numeric_cmp(
    op: &'static str,
    a: &Expr,
    b: &Expr,
    vars: &Vars,
    event: Option<&Event>,
    f: impl Fn(f64, f64) -> bool,
) -> Result<Value, EvalError> {
    Ok(Value::Bool(f(
        numeric(op, a, vars, event)?,
        numeric(op, b, vars, event)?,
    )))
}

fn arith(
    op: &'static str,
    a: &Expr,
    b: &Expr,
    vars: &Vars,
    event: Option<&Event>,
    ff: impl Fn(f64, f64) -> f64,
    fi: impl Fn(i64, i64) -> Option<i64>,
) -> Result<Value, EvalError> {
    let va = a.eval(vars, event)?;
    let vb = b.eval(vars, event)?;
    if let (Value::Int(x), Value::Int(y)) = (&va, &vb) {
        if let Some(r) = fi(*x, *y) {
            return Ok(Value::Int(r));
        }
    }
    let x = va.as_f64().ok_or_else(|| type_err(op, &va))?;
    let y = vb.as_f64().ok_or_else(|| type_err(op, &vb))?;
    Ok(Value::Float(ff(x, y)))
}

/// Preserves integer-ness: if all operand expressions evaluated to integers,
/// an integral result stays `Int`.
fn float_or_int(
    result: f64,
    a: &Expr,
    b: &Expr,
    c: &Expr,
    vars: &Vars,
    event: Option<&Event>,
) -> Value {
    let all_int = [a, b, c]
        .iter()
        .all(|e| matches!(e.eval(vars, event), Ok(Value::Int(_)) | Ok(Value::Bool(_))));
    if all_int && result.fract() == 0.0 {
        Value::Int(result as i64)
    } else {
        Value::Float(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> Vars {
        let mut v = Vars::new();
        v.insert("x".into(), Value::Int(10));
        v.insert("flag".into(), Value::Bool(true));
        v.insert("mode".into(), Value::Str("tv".into()));
        v
    }

    #[test]
    fn literals_and_vars() {
        let v = vars();
        assert_eq!(Expr::lit(3).eval(&v, None).unwrap(), Value::Int(3));
        assert_eq!(Expr::var("x").eval(&v, None).unwrap(), Value::Int(10));
        assert_eq!(
            Expr::var("nope").eval(&v, None),
            Err(EvalError::UnknownVar("nope".into()))
        );
    }

    #[test]
    fn payload_access() {
        let v = vars();
        let ev = Event::with_payload("k", 7);
        assert_eq!(Expr::Payload.eval(&v, Some(&ev)).unwrap(), Value::Int(7));
        assert_eq!(
            Expr::Payload.eval(&v, Some(&Event::plain("k"))),
            Err(EvalError::NoPayload)
        );
        assert_eq!(Expr::Payload.eval(&v, None), Err(EvalError::NoPayload));
    }

    #[test]
    fn comparisons() {
        let v = vars();
        assert_eq!(
            Expr::var("x").gt(Expr::lit(5)).eval(&v, None).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::var("x").le(Expr::lit(9)).eval(&v, None).unwrap(),
            Value::Bool(false)
        );
        // Cross-kind numeric equality.
        assert_eq!(
            Expr::lit(1).eq(Expr::lit(1.0)).eval(&v, None).unwrap(),
            Value::Bool(true)
        );
        // String equality.
        assert_eq!(
            Expr::var("mode")
                .eq(Expr::lit("tv"))
                .eval(&v, None)
                .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn boolean_logic_short_circuits() {
        let v = vars();
        // Right side would error (unknown var) but must not be evaluated.
        let e = Expr::lit(false).and(Expr::var("missing"));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::var("missing"));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Bool(true));
        assert_eq!(
            Expr::var("flag").not().eval(&v, None).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arithmetic_preserves_int() {
        let v = vars();
        assert_eq!(
            Expr::var("x").add(Expr::lit(5)).eval(&v, None).unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            Expr::var("x").mul(Expr::lit(0.5)).eval(&v, None).unwrap(),
            Value::Float(5.0)
        );
        assert_eq!(
            Expr::var("x").sub(Expr::lit(3)).eval(&v, None).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn int_overflow_falls_back_to_float() {
        let v = Vars::new();
        let e = Expr::lit(i64::MAX).add(Expr::lit(1));
        assert!(matches!(e.eval(&v, None).unwrap(), Value::Float(_)));
    }

    #[test]
    fn clamp_min_max() {
        let v = vars();
        let e = Expr::var("x").clamp(Expr::lit(0), Expr::lit(7));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Int(7));
        let e = Expr::Min(Box::new(Expr::lit(3)), Box::new(Expr::lit(9)));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Int(3));
        let e = Expr::Max(Box::new(Expr::lit(3.5)), Box::new(Expr::lit(9.0)));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Float(9.0));
    }

    #[test]
    fn if_else_selects_branch() {
        let v = vars();
        let e = Expr::var("flag").if_else(Expr::lit("yes"), Expr::lit("no"));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Str("yes".into()));
        let e = Expr::var("x")
            .lt(Expr::lit(0))
            .if_else(Expr::lit(1), Expr::lit(2));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Int(2));
        // Untaken branch is not evaluated.
        let e = Expr::lit(true).if_else(Expr::lit(1), Expr::var("missing"));
        assert_eq!(e.eval(&v, None).unwrap(), Value::Int(1));
    }

    #[test]
    fn guard_requires_bool() {
        let v = vars();
        assert!(Expr::var("mode").eval_bool(&v, None).is_err());
        assert!(Expr::var("flag").eval_bool(&v, None).unwrap());
    }

    #[test]
    fn referenced_vars_collects_all() {
        let e = Expr::var("a").add(Expr::var("b").mul(Expr::lit(2)));
        let mut out = Vec::new();
        e.referenced_vars(&mut out);
        out.sort();
        assert_eq!(out, vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn type_mismatch_reported() {
        let v = vars();
        let e = Expr::var("mode").add(Expr::lit(1));
        assert!(matches!(
            e.eval(&v, None),
            Err(EvalError::TypeMismatch { op: "add", .. })
        ));
    }
}
