//! Property-based tests of expression evaluation and executor invariants.

use proptest::prelude::*;
use simkit::{SimDuration, SimTime};
use statemachine::{Event, Executor, Expr, MachineBuilder, Value};

/// A strategy for small well-typed numeric expressions over vars a, b.
fn arb_num_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Expr::lit),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.add(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.sub(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.mul(y)),
            (inner.clone(), inner.clone(), inner).prop_map(|(x, lo, hi)| {
                // Normalize bounds so clamp is well-formed semantically.
                Expr::Min(Box::new(lo.clone()), Box::new(hi.clone()))
                    .le(Expr::Max(Box::new(lo.clone()), Box::new(hi.clone())))
                    .if_else(x.clone().clamp(lo, hi), x)
            }),
        ]
    })
}

proptest! {
    /// Well-typed numeric expressions never fail to evaluate and always
    /// produce a numeric value.
    #[test]
    fn numeric_exprs_total(e in arb_num_expr(), a in -50i64..50, b in -50i64..50) {
        let mut vars = std::collections::BTreeMap::new();
        vars.insert("a".to_owned(), Value::Int(a));
        vars.insert("b".to_owned(), Value::Int(b));
        let v = e.eval(&vars, None);
        prop_assert!(v.is_ok(), "{e:?} failed: {v:?}");
        prop_assert!(v.unwrap().as_f64().is_some());
    }

    /// clamp always lands inside [min(lo,hi), max(lo,hi)] when bounds are
    /// ordered.
    #[test]
    fn clamp_bounds(x in -1000i64..1000, lo in -100i64..100, hi in -100i64..100) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let e = Expr::lit(x).clamp(Expr::lit(lo), Expr::lit(hi));
        let v = e.eval(&Default::default(), None).unwrap().as_i64().unwrap();
        prop_assert!(v >= lo && v <= hi);
        if x >= lo && x <= hi {
            prop_assert_eq!(v, x);
        }
    }

    /// referenced_vars finds exactly the variables eval needs: evaluating
    /// with those (and only those) bound always succeeds.
    #[test]
    fn referenced_vars_sufficient(e in arb_num_expr()) {
        let mut names = Vec::new();
        e.referenced_vars(&mut names);
        let mut vars = std::collections::BTreeMap::new();
        for n in names {
            vars.insert(n, Value::Int(1));
        }
        prop_assert!(e.eval(&vars, None).is_ok());
    }

    /// The executor never panics and keeps a consistent active chain on
    /// arbitrary event/advance sequences against a nontrivial machine.
    #[test]
    fn executor_robust_under_random_stimuli(
        steps in prop::collection::vec((0u8..6, 1u64..200), 1..100)
    ) {
        let machine = MachineBuilder::new("random")
            .state("a")
            .state("b")
            .child_state("b", "b1")
            .child_state("b", "b2")
            .child_initial("b", "b1")
            .state("c")
            .initial("a")
            .var("n", 0)
            .output("o")
            .on("a", "x", "b", |t| t.assign("n", Expr::var("n").add(Expr::lit(1))))
            .on("b1", "y", "b2", |t| t.output("o", Expr::var("n")))
            .on("b2", "y", "b1", |t| t)
            .on("b", "z", "c", |t| t)
            .after("c", SimDuration::from_millis(50), "a", |t| t)
            .on("c", "x", "a", |t| t)
            .build()
            .unwrap();
        let mut exec = Executor::new(&machine);
        exec.start();
        for (ev, advance) in steps {
            let target = exec.now() + SimDuration::from_millis(advance);
            exec.advance_to(target);
            let name = ["x", "y", "z", "x", "y", "z"][ev as usize];
            exec.step(&Event::plain(name));
            // Invariants: exactly one leaf; chain is ancestor-consistent.
            let chain = exec.active_chain();
            prop_assert!(!chain.is_empty());
            prop_assert!(exec.errors().is_empty(), "{:?}", exec.errors());
            // Model time is monotone.
            prop_assert!(exec.now() >= target);
        }
    }

    /// Timer semantics: an `after(d)` transition fires at exactly
    /// entry + d regardless of how the advance is chopped up.
    #[test]
    fn timer_fires_at_exact_instant(chunks in prop::collection::vec(1u64..40, 1..30)) {
        let machine = MachineBuilder::new("t")
            .state("w")
            .state("f")
            .initial("w")
            .output("fired")
            .after("w", SimDuration::from_millis(100), "f", |t| t.output_const("fired", 1))
            .build()
            .unwrap();
        let mut exec = Executor::new(&machine);
        exec.start();
        let mut now = SimTime::ZERO;
        for c in chunks {
            now += SimDuration::from_millis(c);
            exec.advance_to(now);
        }
        let end = exec.now().max(SimTime::from_millis(500));
        exec.advance_to(end);
        let outs = exec.outputs();
        prop_assert_eq!(outs.len(), 1);
        prop_assert_eq!(outs[0].time, SimTime::from_millis(100));
    }
}
