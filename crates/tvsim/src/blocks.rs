//! Block-id allocation and the synthetic firmware bank.
//!
//! The paper's diagnosis experiment instruments the real TV's C code into
//! **60 000 basic blocks**; a 27-key-press teletext scenario executed
//! 13 796 of them. The hand-written feature logic of this crate amounts to
//! a few hundred blocks, so — as documented in DESIGN.md — the remaining
//! firmware (drivers, codecs, middleware) is represented by a
//! [`SyntheticCodeBank`]: a deterministic pseudo call-graph in which every
//! feature operation executes a characteristic set of block ids. Coverage
//! therefore correlates with functionality exactly as in real firmware,
//! which is the property spectrum-based diagnosis depends on.

use observe::BlockCoverage;
use serde::{Deserialize, Serialize};

/// Default total number of instrumented blocks (the paper's figure).
pub const N_BLOCKS: u32 = 60_000;

/// Block-id ranges for the hand-written feature logic.
///
/// Each feature module hits ids inside its range; the synthetic bank owns
/// everything from [`BlockMap::SYNTHETIC_BASE`] up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMap;

impl BlockMap {
    /// Power handling blocks.
    pub const POWER: u32 = 0;
    /// Volume feature blocks.
    pub const VOLUME: u32 = 40;
    /// Channel tuner blocks.
    pub const CHANNEL: u32 = 80;
    /// Teletext feature blocks.
    pub const TELETEXT: u32 = 140;
    /// Screen/OSD manager blocks.
    pub const SCREEN: u32 = 220;
    /// Child-lock blocks.
    pub const CHILDLOCK: u32 = 300;
    /// Sleep-timer blocks.
    pub const SLEEP: u32 = 330;
    /// Swivel blocks.
    pub const SWIVEL: u32 = 360;
    /// EPG blocks.
    pub const EPG: u32 = 390;
    /// First id owned by the synthetic bank.
    pub const SYNTHETIC_BASE: u32 = 1_000;
}

/// Operations whose firmware footprint the synthetic bank models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FirmwareOp {
    /// Cold boot / power toggle path.
    Boot,
    /// Tuner retune.
    Tune,
    /// Audio path update (volume/mute).
    Audio,
    /// Teletext acquisition and decode.
    TeletextAcquire,
    /// Teletext page render.
    TeletextRender,
    /// Video scaling / dual-screen composition.
    Compose,
    /// Menu / OSD drawing.
    Osd,
    /// EPG database access.
    EpgQuery,
    /// Motor control (swivel).
    Motor,
    /// Per-key housekeeping executed on every input.
    Housekeeping,
}

impl FirmwareOp {
    /// All operations.
    pub const ALL: [FirmwareOp; 10] = [
        FirmwareOp::Boot,
        FirmwareOp::Tune,
        FirmwareOp::Audio,
        FirmwareOp::TeletextAcquire,
        FirmwareOp::TeletextRender,
        FirmwareOp::Compose,
        FirmwareOp::Osd,
        FirmwareOp::EpgQuery,
        FirmwareOp::Motor,
        FirmwareOp::Housekeeping,
    ];

    /// Blocks this operation executes per invocation.
    fn footprint(self) -> u32 {
        match self {
            FirmwareOp::Boot => 4_800,
            FirmwareOp::Tune => 2_700,
            FirmwareOp::Audio => 800,
            FirmwareOp::TeletextAcquire => 2_100,
            FirmwareOp::TeletextRender => 1_700,
            FirmwareOp::Compose => 2_500,
            FirmwareOp::Osd => 1_500,
            FirmwareOp::EpgQuery => 1_300,
            FirmwareOp::Motor => 300,
            FirmwareOp::Housekeeping => 650,
        }
    }

    /// Deterministic per-op region seed.
    fn region(self) -> u32 {
        match self {
            FirmwareOp::Boot => 0,
            FirmwareOp::Tune => 1,
            FirmwareOp::Audio => 2,
            FirmwareOp::TeletextAcquire => 3,
            FirmwareOp::TeletextRender => 4,
            FirmwareOp::Compose => 5,
            FirmwareOp::Osd => 6,
            FirmwareOp::EpgQuery => 7,
            FirmwareOp::Motor => 8,
            FirmwareOp::Housekeeping => 9,
        }
    }
}

/// Deterministic synthetic firmware: maps operations to block-id sets.
///
/// Each operation owns a contiguous *core* region (blocks always executed)
/// plus a scattered *shared* tail (utility code shared between operations),
/// mimicking the overlap structure of real firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticCodeBank {
    n_blocks: u32,
}

impl SyntheticCodeBank {
    /// Creates a bank over `n_blocks` total instrumented blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is not greater than
    /// [`BlockMap::SYNTHETIC_BASE`] plus the largest footprint region.
    pub fn new(n_blocks: u32) -> Self {
        assert!(
            n_blocks >= BlockMap::SYNTHETIC_BASE + 52_000,
            "bank needs room for synthetic regions (got {n_blocks})"
        );
        SyntheticCodeBank { n_blocks }
    }

    /// Total instrumented blocks.
    pub fn n_blocks(&self) -> u32 {
        self.n_blocks
    }

    /// The core region of an operation: `[start, start+len)`.
    pub fn core_region(&self, op: FirmwareOp) -> (u32, u32) {
        // Carve disjoint 5000-block regions per op above SYNTHETIC_BASE.
        let start = BlockMap::SYNTHETIC_BASE + op.region() * 5_000;
        (start, op.footprint())
    }

    /// Number of data-conditional sub-regions per operation (one per
    /// low-order bit of the variant — branch-dependent basic blocks).
    pub const VARIANT_BITS: u32 = 10;

    /// Executes `op` against the coverage recorder: hits its core region,
    /// the variant-bit-conditioned sub-regions (data-dependent branches),
    /// and a deterministic scatter of shared utility blocks.
    ///
    /// `variant` is the data the operation processes (e.g. the teletext
    /// page number): each set bit of `variant` executes one conditional
    /// sub-region, mirroring how real basic blocks depend on input data.
    pub fn execute(&self, cov: &mut BlockCoverage, op: FirmwareOp, variant: u32) {
        let (start, len) = self.core_region(op);
        // Core: always-executed part (~70%).
        let always = len * 7 / 10;
        for b in start..start + always {
            cov.hit(b);
        }
        // Conditional part: one slice per variant bit.
        let var_len = len - always;
        let slice = (var_len / Self::VARIANT_BITS).max(1);
        for bit in 0..Self::VARIANT_BITS {
            if variant & (1 << bit) != 0 {
                let lo = start + always + bit * slice;
                let hi = (lo + slice).min(start + len);
                for b in lo..hi {
                    cov.hit(b);
                }
            }
        }
        // Shared utility tail: scattered high blocks common across ops.
        let shared_base = BlockMap::SYNTHETIC_BASE + 50_000;
        let shared_space = self.n_blocks - shared_base;
        let mut x = (op.region() as u64 + 1).wrapping_mul(0x9E37_79B9);
        for _ in 0..120 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = shared_base + ((x >> 16) % shared_space as u64) as u32;
            cov.hit(b);
        }
    }

    /// The variant bit whose conditional sub-region hosts the injected
    /// teletext render fault.
    pub const FAULT_BIT: u32 = 3;

    /// The designated faulty block inside the teletext render path — the
    /// block the E1 experiment injects its fault into. It sits in the
    /// conditional sub-region for variant bit [`Self::FAULT_BIT`], so it
    /// executes exactly when the rendered page number has that bit set.
    pub fn teletext_fault_block(&self) -> u32 {
        let (start, len) = self.core_region(FirmwareOp::TeletextRender);
        let always = len * 7 / 10;
        let slice = ((len - always) / Self::VARIANT_BITS).max(1);
        start + always + Self::FAULT_BIT * slice + slice / 2
    }
}

impl Default for SyntheticCodeBank {
    fn default() -> Self {
        SyntheticCodeBank::new(N_BLOCKS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let bank = SyntheticCodeBank::default();
        let mut regions: Vec<(u32, u32)> = FirmwareOp::ALL
            .iter()
            .map(|op| bank.core_region(*op))
            .collect();
        regions.sort();
        for pair in regions.windows(2) {
            let (s0, l0) = pair[0];
            let (s1, _) = pair[1];
            assert!(s0 + l0 <= s1, "overlap between regions");
        }
    }

    #[test]
    fn execute_is_deterministic() {
        let bank = SyntheticCodeBank::default();
        let run = || {
            let mut cov = BlockCoverage::new(N_BLOCKS);
            bank.execute(&mut cov, FirmwareOp::Tune, 2);
            cov.snapshot_and_reset()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn variants_differ_but_share_core() {
        let bank = SyntheticCodeBank::default();
        let mut c0 = BlockCoverage::new(N_BLOCKS);
        bank.execute(&mut c0, FirmwareOp::TeletextRender, 0);
        let s0 = c0.snapshot_and_reset();
        let mut c1 = BlockCoverage::new(N_BLOCKS);
        bank.execute(&mut c1, FirmwareOp::TeletextRender, 1);
        let s1 = c1.snapshot_and_reset();
        assert_ne!(s0, s1);
        // The always-executed core is shared.
        let (start, len) = bank.core_region(FirmwareOp::TeletextRender);
        for b in start..start + len * 7 / 10 {
            assert!(s0.is_hit(b) && s1.is_hit(b));
        }
    }

    #[test]
    fn fault_block_conditional_on_fault_bit() {
        let bank = SyntheticCodeBank::default();
        let fb = bank.teletext_fault_block();
        // Executes when the variant has the fault bit set…
        let mut cov = BlockCoverage::new(N_BLOCKS);
        bank.execute(
            &mut cov,
            FirmwareOp::TeletextRender,
            1 << SyntheticCodeBank::FAULT_BIT,
        );
        assert!(cov.is_hit(fb), "fault block must execute with bit set");
        // …not when clear, and not on unrelated ops.
        let mut cov2 = BlockCoverage::new(N_BLOCKS);
        bank.execute(&mut cov2, FirmwareOp::TeletextRender, 0);
        assert!(!cov2.is_hit(fb));
        let mut cov3 = BlockCoverage::new(N_BLOCKS);
        bank.execute(&mut cov3, FirmwareOp::Audio, u32::MAX);
        assert!(!cov3.is_hit(fb));
    }

    #[test]
    fn footprint_scale_matches_paper_order() {
        // One op executes hundreds-to-thousands of blocks; a realistic
        // scenario of ~27 keys should reach the paper's ~14k executed.
        let bank = SyntheticCodeBank::default();
        let mut cov = BlockCoverage::new(N_BLOCKS);
        for op in FirmwareOp::ALL {
            bank.execute(&mut cov, op, 0);
        }
        let hit = cov.count();
        assert!(hit > 12_000 && hit < 22_000, "hit={hit}");
    }

    #[test]
    #[should_panic(expected = "bank needs room")]
    fn too_small_bank_rejected() {
        let _ = SyntheticCodeBank::new(40_000);
    }
}
