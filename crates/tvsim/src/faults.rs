//! Injectable TV faults.
//!
//! The paper's terminology (after Avižienis et al.): a *fault* is the
//! adjudged cause of an *error* (bad state) which may lead to a *failure*
//! (user-visible misbehaviour). These are the faults the TV experiments
//! inject — programming mistakes and integration defects of the kind the
//! Trader case studies report.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A fault injectable into the [`TvSystem`](crate::TvSystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TvFault {
    /// The video decoder fails to follow the UI into teletext mode — the
    /// loss-of-synchronization defect of Sözer et al. (paper Sect. 4.3).
    TeletextSyncLoss,
    /// The teletext *render* path contains a faulty block: rendered pages
    /// are corrupted (wrong page shown). The E1 diagnosis target.
    TeletextRenderFault,
    /// Volume-up commands are dropped (volume sticks).
    StuckVolume,
    /// Channel-up skips a channel (off-by-one in the tuner table).
    ChannelSkip,
    /// The menu never closes on Back (event handler unregistered).
    MenuFreeze,
    /// The sleep timer never fires (timer wheel mis-programmed).
    SleepTimerLost,
    /// The swivel motor ignores commands (the user-perception case:
    /// internally attributed, highly irritating).
    SwivelStuck,
    /// Mute state inverted after unmute (state-update race).
    MuteInversion,
}

impl TvFault {
    /// A static name for telemetry events (matches the [`fmt::Display`]
    /// form, but borrows for `'static` so recording never allocates).
    pub fn name(self) -> &'static str {
        match self {
            TvFault::TeletextSyncLoss => "teletext-sync-loss",
            TvFault::TeletextRenderFault => "teletext-render-fault",
            TvFault::StuckVolume => "stuck-volume",
            TvFault::ChannelSkip => "channel-skip",
            TvFault::MenuFreeze => "menu-freeze",
            TvFault::SleepTimerLost => "sleep-timer-lost",
            TvFault::SwivelStuck => "swivel-stuck",
            TvFault::MuteInversion => "mute-inversion",
        }
    }

    /// The pipeline unit the fault lives in — the micro-reboot target
    /// when the awareness loop localizes an error to this fault. Matches
    /// [`TvSystem::UNITS`](crate::TvSystem::UNITS).
    pub fn unit(self) -> &'static str {
        match self {
            TvFault::TeletextSyncLoss | TvFault::TeletextRenderFault => "teletext",
            TvFault::StuckVolume | TvFault::MuteInversion => "audio",
            TvFault::ChannelSkip => "tuner",
            TvFault::MenuFreeze => "screen",
            TvFault::SleepTimerLost => "sleep",
            TvFault::SwivelStuck => "swivel",
        }
    }

    /// Every injectable fault.
    pub const ALL: [TvFault; 8] = [
        TvFault::TeletextSyncLoss,
        TvFault::TeletextRenderFault,
        TvFault::StuckVolume,
        TvFault::ChannelSkip,
        TvFault::MenuFreeze,
        TvFault::SleepTimerLost,
        TvFault::SwivelStuck,
        TvFault::MuteInversion,
    ];
}

impl fmt::Display for TvFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of currently active faults.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    active: BTreeSet<TvFault>,
}

impl FaultSet {
    /// No active faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Activates a fault.
    pub fn inject(&mut self, fault: TvFault) {
        self.active.insert(fault);
    }

    /// Deactivates a fault (e.g. after a software update).
    pub fn clear(&mut self, fault: TvFault) {
        self.active.remove(&fault);
    }

    /// Deactivates everything.
    pub fn clear_all(&mut self) {
        self.active.clear();
    }

    /// True if `fault` is active.
    pub fn is_active(&self, fault: TvFault) -> bool {
        self.active.contains(&fault)
    }

    /// Number of active faults.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True when no fault is active.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Iterates over active faults.
    pub fn iter(&self) -> impl Iterator<Item = TvFault> + '_ {
        self.active.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_and_clear() {
        let mut fs = FaultSet::none();
        assert!(fs.is_empty());
        fs.inject(TvFault::StuckVolume);
        fs.inject(TvFault::StuckVolume); // idempotent
        assert!(fs.is_active(TvFault::StuckVolume));
        assert_eq!(fs.len(), 1);
        fs.clear(TvFault::StuckVolume);
        assert!(!fs.is_active(TvFault::StuckVolume));
    }

    #[test]
    fn clear_all() {
        let mut fs = FaultSet::none();
        for f in TvFault::ALL {
            fs.inject(f);
        }
        assert_eq!(fs.len(), TvFault::ALL.len());
        fs.clear_all();
        assert!(fs.is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(TvFault::TeletextSyncLoss.to_string(), "teletext-sync-loss");
        for f in TvFault::ALL {
            assert!(!f.to_string().is_empty());
        }
    }
}
