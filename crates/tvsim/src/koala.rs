//! A Koala-style architectural description of the TV.
//!
//! Koala is the component model used at NXP/Philips for TV software; the
//! Trader observation work built AspectKoala on top of it (paper
//! Sect. 4.1). This module provides the architectural metadata layer:
//! components with provides/requires interfaces and bindings, validated
//! for completeness. The architecture-level reliability analysis (FMEA,
//! `devtools`) consumes this description.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A component declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentDecl {
    /// Component name.
    pub name: String,
    /// Interfaces this component provides.
    pub provides: Vec<String>,
    /// Interfaces this component requires.
    pub requires: Vec<String>,
}

impl ComponentDecl {
    /// Creates a declaration.
    pub fn new(
        name: impl Into<String>,
        provides: impl IntoIterator<Item = impl Into<String>>,
        requires: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        ComponentDecl {
            name: name.into(),
            provides: provides.into_iter().map(Into::into).collect(),
            requires: requires.into_iter().map(Into::into).collect(),
        }
    }
}

/// A binding: `consumer.requires_interface` → `provider`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// The component whose requirement is satisfied.
    pub consumer: String,
    /// The required interface.
    pub interface: String,
    /// The component providing it.
    pub provider: String,
}

/// Architectural defects found by [`Assembly::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssemblyIssue {
    /// A required interface has no binding.
    UnboundRequirement {
        /// The requiring component.
        component: String,
        /// The unbound interface.
        interface: String,
    },
    /// A binding references an unknown component.
    UnknownComponent(String),
    /// A binding's provider does not provide the interface.
    WrongProvider {
        /// The offending binding provider.
        provider: String,
        /// The interface it does not provide.
        interface: String,
    },
}

impl fmt::Display for AssemblyIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssemblyIssue::UnboundRequirement {
                component,
                interface,
            } => {
                write!(f, "`{component}` requires `{interface}` but it is unbound")
            }
            AssemblyIssue::UnknownComponent(c) => write!(f, "binding references unknown `{c}`"),
            AssemblyIssue::WrongProvider {
                provider,
                interface,
            } => {
                write!(f, "`{provider}` does not provide `{interface}`")
            }
        }
    }
}

/// A component assembly: components plus bindings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assembly {
    components: Vec<ComponentDecl>,
    bindings: Vec<Binding>,
}

impl Assembly {
    /// Creates an empty assembly.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component.
    pub fn component(mut self, decl: ComponentDecl) -> Self {
        self.components.push(decl);
        self
    }

    /// Adds a binding.
    pub fn bind(
        mut self,
        consumer: impl Into<String>,
        interface: impl Into<String>,
        provider: impl Into<String>,
    ) -> Self {
        self.bindings.push(Binding {
            consumer: consumer.into(),
            interface: interface.into(),
            provider: provider.into(),
        });
        self
    }

    /// The components.
    pub fn components(&self) -> &[ComponentDecl] {
        &self.components
    }

    /// The bindings.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Components that directly depend on `name` (consume one of its
    /// provided interfaces).
    pub fn dependents_of(&self, name: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .bindings
            .iter()
            .filter(|b| b.provider == name)
            .map(|b| b.consumer.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Components `name` directly depends on.
    pub fn dependencies_of(&self, name: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .bindings
            .iter()
            .filter(|b| b.consumer == name)
            .map(|b| b.provider.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks completeness: every requirement bound, all names known, all
    /// providers actually provide.
    pub fn validate(&self) -> Vec<AssemblyIssue> {
        let mut issues = Vec::new();
        let names: BTreeSet<&str> = self.components.iter().map(|c| c.name.as_str()).collect();
        for b in &self.bindings {
            if !names.contains(b.consumer.as_str()) {
                issues.push(AssemblyIssue::UnknownComponent(b.consumer.clone()));
            }
            if !names.contains(b.provider.as_str()) {
                issues.push(AssemblyIssue::UnknownComponent(b.provider.clone()));
                continue;
            }
            let provider = self
                .components
                .iter()
                .find(|c| c.name == b.provider)
                .expect("checked above");
            if !provider.provides.contains(&b.interface) {
                issues.push(AssemblyIssue::WrongProvider {
                    provider: b.provider.clone(),
                    interface: b.interface.clone(),
                });
            }
        }
        for c in &self.components {
            for req in &c.requires {
                let bound = self
                    .bindings
                    .iter()
                    .any(|b| b.consumer == c.name && &b.interface == req);
                if !bound {
                    issues.push(AssemblyIssue::UnboundRequirement {
                        component: c.name.clone(),
                        interface: req.clone(),
                    });
                }
            }
        }
        issues
    }
}

/// The TV's reference architecture: tuner → decoder → scaler → mixer →
/// display, with teletext, audio, UI, EPG and platform services.
pub fn tv_assembly() -> Assembly {
    Assembly::new()
        .component(ComponentDecl::new(
            "tuner",
            ["ITransportStream"],
            ["IMemory"],
        ))
        .component(ComponentDecl::new(
            "decoder",
            ["IVideoFrames", "IAudioSamples", "ITeletextData"],
            ["ITransportStream", "IMemory"],
        ))
        .component(ComponentDecl::new(
            "teletext",
            ["ITeletextPages"],
            ["ITeletextData", "IMemory"],
        ))
        .component(ComponentDecl::new(
            "scaler",
            ["IScaledVideo"],
            ["IVideoFrames", "IMemory"],
        ))
        .component(ComponentDecl::new(
            "mixer",
            ["IScreen"],
            ["IScaledVideo", "ITeletextPages", "IOsd"],
        ))
        .component(ComponentDecl::new("audio", ["ISound"], ["IAudioSamples"]))
        .component(ComponentDecl::new("ui", ["IOsd", "IUserInput"], ["IKeys"]))
        .component(ComponentDecl::new(
            "remote",
            ["IKeys"],
            Vec::<String>::new(),
        ))
        .component(ComponentDecl::new("epg", ["IGuide"], ["ITransportStream"]))
        .component(ComponentDecl::new(
            "platform",
            ["IMemory"],
            Vec::<String>::new(),
        ))
        .bind("tuner", "IMemory", "platform")
        .bind("decoder", "ITransportStream", "tuner")
        .bind("decoder", "IMemory", "platform")
        .bind("teletext", "ITeletextData", "decoder")
        .bind("teletext", "IMemory", "platform")
        .bind("scaler", "IVideoFrames", "decoder")
        .bind("scaler", "IMemory", "platform")
        .bind("mixer", "IScaledVideo", "scaler")
        .bind("mixer", "ITeletextPages", "teletext")
        .bind("mixer", "IOsd", "ui")
        .bind("audio", "IAudioSamples", "decoder")
        .bind("ui", "IKeys", "remote")
        .bind("epg", "ITransportStream", "tuner")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_assembly_is_complete() {
        let a = tv_assembly();
        let issues = a.validate();
        assert!(issues.is_empty(), "{issues:?}");
        assert_eq!(a.components().len(), 10);
    }

    #[test]
    fn dependency_queries() {
        let a = tv_assembly();
        let deps = a.dependencies_of("mixer");
        assert!(deps.contains(&"scaler"));
        assert!(deps.contains(&"teletext"));
        assert!(deps.contains(&"ui"));
        let dependents = a.dependents_of("decoder");
        assert!(dependents.contains(&"teletext"));
        assert!(dependents.contains(&"scaler"));
        assert!(dependents.contains(&"audio"));
    }

    #[test]
    fn unbound_requirement_flagged() {
        let a = Assembly::new().component(ComponentDecl::new("x", ["IA"], ["IB"]));
        let issues = a.validate();
        assert_eq!(issues.len(), 1);
        assert!(matches!(
            issues[0],
            AssemblyIssue::UnboundRequirement { .. }
        ));
    }

    #[test]
    fn wrong_provider_flagged() {
        let a = Assembly::new()
            .component(ComponentDecl::new("a", ["IA"], Vec::<String>::new()))
            .component(ComponentDecl::new("b", Vec::<String>::new(), ["IC"]))
            .bind("b", "IC", "a");
        let issues = a.validate();
        assert!(issues
            .iter()
            .any(|i| matches!(i, AssemblyIssue::WrongProvider { .. })));
    }

    #[test]
    fn unknown_component_flagged() {
        let a = Assembly::new()
            .component(ComponentDecl::new("a", ["IA"], Vec::<String>::new()))
            .bind("ghost", "IA", "a");
        assert!(a
            .validate()
            .iter()
            .any(|i| matches!(i, AssemblyIssue::UnknownComponent(_))));
    }

    #[test]
    fn issue_display() {
        let i = AssemblyIssue::UnboundRequirement {
            component: "x".into(),
            interface: "IY".into(),
        };
        assert!(i.to_string().contains("unbound"));
    }
}
