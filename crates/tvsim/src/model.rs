//! The specification model of desired TV behaviour.
//!
//! This is the artifact paper Sect. 4.2 describes: a high-level executable
//! model of the TV "from the viewpoint of the user", capturing the
//! relation between remote-control input and observable output. It is a
//! *partial* model (the paper: complete models are infeasible; partial
//! models concentrate on what matters to the user): it covers volume,
//! mute, channel, teletext pages, screen-mode composition, source, swivel
//! and the sleep-timer setting — but not, e.g., the sleep timer's
//! long-horizon expiry.
//!
//! The awareness framework executes this machine at run time next to the
//! [`TvSystem`](crate::TvSystem); any divergence beyond the configured
//! tolerances is an error.

use statemachine::{Expr, Machine, MachineBuilder};

/// The user-view screen-mode expression over the model's variables.
fn mode_expr() -> Expr {
    Expr::var("menu").eq(Expr::lit(1)).if_else(
        Expr::lit("menu"),
        Expr::var("epg").eq(Expr::lit(1)).if_else(
            Expr::lit("epg"),
            Expr::var("txt").eq(Expr::lit(1)).if_else(
                Expr::var("dual")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit("dual+teletext"), Expr::lit("teletext")),
                Expr::var("dual").eq(Expr::lit(1)).if_else(
                    Expr::lit("dual"),
                    Expr::var("pip")
                        .eq(Expr::lit(1))
                        .if_else(Expr::lit("pip"), Expr::lit("video")),
                ),
            ),
        ),
    )
}

/// Audible volume: 0 while muted.
fn volume_expr() -> Expr {
    Expr::var("muted")
        .eq(Expr::lit(1))
        .if_else(Expr::lit(0), Expr::var("level"))
}

fn osd_focused() -> Expr {
    Expr::var("menu")
        .eq(Expr::lit(1))
        .or(Expr::var("epg").eq(Expr::lit(1)))
}

/// Builds the TV specification machine.
///
/// ```
/// use tvsim::tv_spec_machine;
/// let machine = tv_spec_machine();
/// assert!(machine.is_well_formed(), "{:?}", machine.validate());
/// ```
pub fn tv_spec_machine() -> Machine {
    let b = MachineBuilder::new("tv-spec")
        .state("standby")
        .state("on")
        .initial("standby")
        .var("level", 20)
        .var("muted", 0)
        .var("ch", 1)
        .var("txt", 0)
        .var("page", 100)
        .var("td_count", 0)
        .var("td_acc", 0)
        .var("menu", 0)
        .var("epg", 0)
        .var("dual", 0)
        .var("pip", 0)
        .var("src", 0)
        .var("angle", 0)
        .var("sleep_min", 0)
        .output("volume")
        .output("audio.muted")
        .output("channel")
        .output("teletext.page")
        .output("screen.mode")
        .output("source")
        .output("swivel.angle")
        .output("sleep.minutes");

    let b = b
        // Power on: announce restored state.
        .on("standby", "power", "on", |t| {
            t.output_const("screen.mode", "video")
                .output("volume", volume_expr())
                .output("audio.muted", Expr::var("muted"))
                .output("channel", Expr::var("ch"))
        })
        // Power off: UI state resets, settings persist. The teletext
        // plane is blanked (page 0), mirroring the system's forced
        // teletext shutdown.
        .on("on", "power", "standby", |t| {
            t.assign("txt", Expr::lit(0))
                .assign("td_count", Expr::lit(0))
                .assign("td_acc", Expr::lit(0))
                .assign("menu", Expr::lit(0))
                .assign("epg", Expr::lit(0))
                .assign("dual", Expr::lit(0))
                .assign("pip", Expr::lit(0))
                .assign("sleep_min", Expr::lit(0))
                .output_const("teletext.page", 0)
                .output_const("screen.mode", "off")
        });

    // Volume.
    let b = b
        .on("on", "vol_up", "on", |t| {
            t.assign(
                "level",
                Expr::var("level")
                    .add(Expr::lit(5))
                    .clamp(Expr::lit(0), Expr::lit(100)),
            )
            .output("volume", volume_expr())
            .output("audio.muted", Expr::var("muted"))
        })
        .on("on", "vol_down", "on", |t| {
            t.assign(
                "level",
                Expr::var("level")
                    .sub(Expr::lit(5))
                    .clamp(Expr::lit(0), Expr::lit(100)),
            )
            .output("volume", volume_expr())
            .output("audio.muted", Expr::var("muted"))
        })
        .on("on", "mute", "on", |t| {
            t.assign(
                "muted",
                Expr::var("muted")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::lit(1)),
            )
            .output("volume", volume_expr())
            .output("audio.muted", Expr::var("muted"))
        });

    // Digits: OSD swallows; teletext page entry; direct tune.
    let page_candidate = || Expr::var("td_acc").mul(Expr::lit(10)).add(Expr::Payload);
    let b = b
        .on("on", "digit", "on", |t| t.guard(osd_focused()))
        .on("on", "digit", "on", |t| {
            t.guard(
                Expr::var("txt")
                    .eq(Expr::lit(1))
                    .and(Expr::var("td_count").lt(Expr::lit(2))),
            )
            .assign("td_count", Expr::var("td_count").add(Expr::lit(1)))
            .assign("td_acc", page_candidate())
        })
        .on("on", "digit", "on", |t| {
            t.guard(
                Expr::var("txt")
                    .eq(Expr::lit(1))
                    .and(Expr::var("td_count").eq(Expr::lit(2))),
            )
            .assign(
                "page",
                page_candidate()
                    .ge(Expr::lit(100))
                    .and(page_candidate().le(Expr::lit(899)))
                    .if_else(page_candidate(), Expr::var("page")),
            )
            .assign("td_count", Expr::lit(0))
            .assign("td_acc", Expr::lit(0))
            .output("teletext.page", Expr::var("page"))
        })
        .on("on", "digit", "on", |t| {
            t.assign(
                "ch",
                Expr::Payload
                    .eq(Expr::lit(0))
                    .if_else(Expr::lit(10), Expr::Payload),
            )
            .output("channel", Expr::var("ch"))
        });

    // Channel up/down, with teletext re-acquisition.
    let b = b
        .on("on", "ch_up", "on", |t| {
            t.guard(Expr::var("txt").eq(Expr::lit(1)))
                .assign(
                    "ch",
                    Expr::var("ch")
                        .ge(Expr::lit(99))
                        .if_else(Expr::lit(1), Expr::var("ch").add(Expr::lit(1))),
                )
                .assign("page", Expr::lit(100))
                .assign("td_count", Expr::lit(0))
                .assign("td_acc", Expr::lit(0))
                .output("channel", Expr::var("ch"))
                .output("teletext.page", Expr::var("page"))
        })
        .on("on", "ch_up", "on", |t| {
            t.assign(
                "ch",
                Expr::var("ch")
                    .ge(Expr::lit(99))
                    .if_else(Expr::lit(1), Expr::var("ch").add(Expr::lit(1))),
            )
            .output("channel", Expr::var("ch"))
        })
        .on("on", "ch_down", "on", |t| {
            t.guard(Expr::var("txt").eq(Expr::lit(1)))
                .assign(
                    "ch",
                    Expr::var("ch")
                        .le(Expr::lit(1))
                        .if_else(Expr::lit(99), Expr::var("ch").sub(Expr::lit(1))),
                )
                .assign("page", Expr::lit(100))
                .assign("td_count", Expr::lit(0))
                .assign("td_acc", Expr::lit(0))
                .output("channel", Expr::var("ch"))
                .output("teletext.page", Expr::var("page"))
        })
        .on("on", "ch_down", "on", |t| {
            t.assign(
                "ch",
                Expr::var("ch")
                    .le(Expr::lit(1))
                    .if_else(Expr::lit(99), Expr::var("ch").sub(Expr::lit(1))),
            )
            .output("channel", Expr::var("ch"))
        });

    // Teletext toggle (suppressed under OSD focus).
    let b = b
        .on("on", "teletext", "on", |t| t.guard(osd_focused()))
        .on("on", "teletext", "on", |t| {
            t.guard(Expr::var("txt").eq(Expr::lit(0)))
                .assign("txt", Expr::lit(1))
                .assign("page", Expr::lit(100))
                .assign("td_count", Expr::lit(0))
                .assign("td_acc", Expr::lit(0))
                .output("teletext.page", Expr::var("page"))
                .output("screen.mode", mode_expr())
        })
        .on("on", "teletext", "on", |t| {
            t.guard(Expr::var("txt").eq(Expr::lit(1)))
                .assign("txt", Expr::lit(0))
                .assign("td_count", Expr::lit(0))
                .assign("td_acc", Expr::lit(0))
                .output_const("teletext.page", 0)
                .output("screen.mode", mode_expr())
        });

    // Composition keys.
    let b = b
        .on("on", "dual", "on", |t| {
            t.assign(
                "dual",
                Expr::var("dual")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::lit(1)),
            )
            .assign(
                "pip",
                Expr::var("dual")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::var("pip")),
            )
            .output("screen.mode", mode_expr())
        })
        .on("on", "pip", "on", |t| {
            t.assign(
                "pip",
                Expr::var("pip")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::lit(1)),
            )
            .assign(
                "dual",
                Expr::var("pip")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::var("dual")),
            )
            .output("screen.mode", mode_expr())
        })
        .on("on", "menu", "on", |t| {
            t.assign(
                "menu",
                Expr::var("menu")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::lit(1)),
            )
            .assign(
                "epg",
                Expr::var("menu")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::var("epg")),
            )
            .output("screen.mode", mode_expr())
        })
        .on("on", "epg", "on", |t| {
            t.guard(Expr::var("menu").eq(Expr::lit(1)))
        })
        .on("on", "epg", "on", |t| {
            t.assign(
                "epg",
                Expr::var("epg")
                    .eq(Expr::lit(1))
                    .if_else(Expr::lit(0), Expr::lit(1)),
            )
            .output("screen.mode", mode_expr())
        });

    // Back: menu, then EPG, then teletext.
    let b = b
        .on("on", "back", "on", |t| {
            t.guard(Expr::var("menu").eq(Expr::lit(1)))
                .assign("menu", Expr::lit(0))
                .output("screen.mode", mode_expr())
        })
        .on("on", "back", "on", |t| {
            t.guard(Expr::var("epg").eq(Expr::lit(1)))
                .assign("epg", Expr::lit(0))
                .output("screen.mode", mode_expr())
        })
        .on("on", "back", "on", |t| {
            t.guard(Expr::var("txt").eq(Expr::lit(1)))
                .assign("txt", Expr::lit(0))
                .assign("td_count", Expr::lit(0))
                .assign("td_acc", Expr::lit(0))
                .output_const("teletext.page", 0)
                .output("screen.mode", mode_expr())
        });

    // Source, swivel, sleep.
    let b = b
        .on("on", "source", "on", |t| {
            t.assign(
                "src",
                Expr::var("src")
                    .ge(Expr::lit(3))
                    .if_else(Expr::lit(0), Expr::var("src").add(Expr::lit(1))),
            )
            .output("source", Expr::var("src"))
        })
        .on("on", "swivel_left", "on", |t| {
            t.assign(
                "angle",
                Expr::var("angle")
                    .sub(Expr::lit(15))
                    .clamp(Expr::lit(-45), Expr::lit(45)),
            )
            .output("swivel.angle", Expr::var("angle"))
        })
        .on("on", "swivel_right", "on", |t| {
            t.assign(
                "angle",
                Expr::var("angle")
                    .add(Expr::lit(15))
                    .clamp(Expr::lit(-45), Expr::lit(45)),
            )
            .output("swivel.angle", Expr::var("angle"))
        })
        .on("on", "sleep", "on", |t| {
            t.assign(
                "sleep_min",
                Expr::var("sleep_min")
                    .ge(Expr::lit(120))
                    .if_else(Expr::lit(0), Expr::var("sleep_min").add(Expr::lit(15))),
            )
            .output("sleep.minutes", Expr::var("sleep_min"))
        });

    b.build().expect("tv spec machine is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use statemachine::{Event, Executor, Value};

    fn exec() -> Executor<'static> {
        // Leak: tests only; gives a 'static machine for brevity.
        let machine: &'static Machine = Box::leak(Box::new(tv_spec_machine()));
        let mut e = Executor::new(machine);
        e.start();
        e
    }

    #[test]
    fn machine_is_well_formed() {
        let m = tv_spec_machine();
        let issues = m.validate();
        assert!(m.is_well_formed(), "{issues:?}");
    }

    #[test]
    fn mirrors_volume_semantics() {
        let mut e = exec();
        e.step(&Event::plain("power"));
        assert_eq!(e.last_output("volume"), Some(&Value::Int(20)));
        e.step(&Event::plain("vol_up"));
        assert_eq!(e.last_output("volume"), Some(&Value::Int(25)));
        e.step(&Event::plain("mute"));
        assert_eq!(e.last_output("volume"), Some(&Value::Int(0)));
        assert_eq!(e.last_output("audio.muted"), Some(&Value::Int(1)));
        e.step(&Event::plain("mute"));
        assert_eq!(e.last_output("volume"), Some(&Value::Int(25)));
    }

    #[test]
    fn mirrors_teletext_page_entry() {
        let mut e = exec();
        e.step(&Event::plain("power"));
        e.step(&Event::plain("teletext"));
        assert_eq!(e.last_output("teletext.page"), Some(&Value::Int(100)));
        for d in [2i64, 3, 4] {
            e.step(&Event::with_payload("digit", d));
        }
        assert_eq!(e.last_output("teletext.page"), Some(&Value::Int(234)));
        assert_eq!(
            e.last_output("screen.mode"),
            Some(&Value::Str("teletext".into()))
        );
    }

    #[test]
    fn digit_tunes_when_no_teletext() {
        let mut e = exec();
        e.step(&Event::plain("power"));
        e.step(&Event::with_payload("digit", 7i64));
        assert_eq!(e.last_output("channel"), Some(&Value::Int(7)));
        e.step(&Event::with_payload("digit", 0i64));
        assert_eq!(e.last_output("channel"), Some(&Value::Int(10)));
    }

    #[test]
    fn channel_wraps() {
        let mut e = exec();
        e.step(&Event::plain("power"));
        e.step(&Event::plain("ch_down"));
        assert_eq!(e.last_output("channel"), Some(&Value::Int(99)));
        e.step(&Event::plain("ch_up"));
        assert_eq!(e.last_output("channel"), Some(&Value::Int(1)));
    }

    #[test]
    fn power_off_resets_ui_keeps_settings() {
        let mut e = exec();
        e.step(&Event::plain("power"));
        e.step(&Event::plain("vol_up"));
        e.step(&Event::plain("teletext"));
        e.step(&Event::plain("power"));
        assert_eq!(
            e.last_output("screen.mode"),
            Some(&Value::Str("off".into()))
        );
        e.step(&Event::plain("power"));
        // Volume persisted; teletext did not.
        assert_eq!(e.last_output("volume"), Some(&Value::Int(25)));
        assert_eq!(e.var("txt"), Some(&Value::Int(0)));
    }

    #[test]
    fn mode_lattice_matches_screen_manager() {
        let mut e = exec();
        e.step(&Event::plain("power"));
        e.step(&Event::plain("dual"));
        assert_eq!(
            e.last_output("screen.mode"),
            Some(&Value::Str("dual".into()))
        );
        e.step(&Event::plain("teletext"));
        assert_eq!(
            e.last_output("screen.mode"),
            Some(&Value::Str("dual+teletext".into()))
        );
        e.step(&Event::plain("menu"));
        assert_eq!(
            e.last_output("screen.mode"),
            Some(&Value::Str("menu".into()))
        );
        e.step(&Event::plain("back"));
        assert_eq!(
            e.last_output("screen.mode"),
            Some(&Value::Str("dual+teletext".into()))
        );
    }
}
