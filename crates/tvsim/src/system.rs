//! The composed television system.

use crate::blocks::{FirmwareOp, SyntheticCodeBank, N_BLOCKS};
use crate::faults::{FaultSet, TvFault};
use crate::features::channel::ChannelTuner;
use crate::features::extras::{SleepTimer, Swivel};
use crate::features::screen::ScreenManager;
use crate::features::teletext::Teletext;
use crate::features::volume::Volume;
use crate::features::FeatureCtx;
use crate::remote::Key;
use observe::{BlockCoverage, BlockSnapshot, Observation, ObservationKind};
use simkit::SimTime;
use std::collections::BTreeMap;

/// A unit's checkpointable state as key/value pairs — structurally the
/// same map `recovery::Snapshot` uses, without a dependency edge on the
/// recovery crate.
pub type UnitState = BTreeMap<String, f64>;

/// The executable TV control software: the paper's System Under
/// Observation for all TV-domain experiments.
///
/// ```
/// use tvsim::{TvSystem, Key};
/// use simkit::SimTime;
///
/// let mut tv = TvSystem::new();
/// let obs = tv.press(SimTime::ZERO, Key::Power);
/// assert!(tv.is_on());
/// assert!(obs.iter().any(|o| o.as_output().map(|(n, _)| n == "screen.mode").unwrap_or(false)));
/// tv.press(SimTime::ZERO, Key::VolUp);
/// assert_eq!(tv.volume_level(), 25);
/// ```
#[derive(Debug)]
pub struct TvSystem {
    on: bool,
    volume: Volume,
    tuner: ChannelTuner,
    teletext: Teletext,
    screen: ScreenManager,
    sleep: SleepTimer,
    swivel: Swivel,
    faults: FaultSet,
    cov: BlockCoverage,
    bank: SyntheticCodeBank,
    keys_handled: u64,
}

impl Default for TvSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl TvSystem {
    /// Creates a TV in standby with the paper-scale block map
    /// (60 000 instrumented blocks).
    pub fn new() -> Self {
        Self::with_blocks(N_BLOCKS)
    }

    /// Creates a TV with a custom instrumented-block count (≥ 53 000).
    pub fn with_blocks(n_blocks: u32) -> Self {
        TvSystem {
            on: false,
            volume: Volume::new(),
            tuner: ChannelTuner::new(),
            teletext: Teletext::new(),
            screen: ScreenManager::new(),
            sleep: SleepTimer::new(),
            swivel: Swivel::new(),
            faults: FaultSet::none(),
            cov: BlockCoverage::new(n_blocks),
            bank: SyntheticCodeBank::new(n_blocks),
            keys_handled: 0,
        }
    }

    // ---- state accessors -------------------------------------------------

    /// True while powered on.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Current volume level (0–100).
    pub fn volume_level(&self) -> i64 {
        self.volume.level()
    }

    /// True while muted.
    pub fn is_muted(&self) -> bool {
        self.volume.is_muted()
    }

    /// The tuned channel.
    pub fn channel(&self) -> i64 {
        self.tuner.current()
    }

    /// Teletext feature state.
    pub fn teletext(&self) -> &Teletext {
        &self.teletext
    }

    /// Screen manager state.
    pub fn screen(&self) -> &ScreenManager {
        &self.screen
    }

    /// Sleep timer state.
    pub fn sleep_timer(&self) -> &SleepTimer {
        &self.sleep
    }

    /// Swivel state.
    pub fn swivel(&self) -> &Swivel {
        &self.swivel
    }

    /// Channel tuner (for child-lock configuration).
    pub fn tuner_mut(&mut self) -> &mut ChannelTuner {
        &mut self.tuner
    }

    /// The user-visible screen mode.
    pub fn screen_mode(&self) -> &'static str {
        if !self.on {
            "off"
        } else {
            self.screen.mode(self.teletext.is_on())
        }
    }

    /// Keys handled so far.
    pub fn keys_handled(&self) -> u64 {
        self.keys_handled
    }

    // ---- faults and coverage --------------------------------------------

    /// Activates a fault.
    pub fn inject_fault(&mut self, fault: TvFault) {
        self.faults.inject(fault);
    }

    /// Deactivates a fault.
    pub fn clear_fault(&mut self, fault: TvFault) {
        self.faults.clear(fault);
    }

    /// The active fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The synthetic firmware bank (for fault-block queries).
    pub fn bank(&self) -> &SyntheticCodeBank {
        &self.bank
    }

    /// Number of instrumented blocks.
    pub fn n_blocks(&self) -> u32 {
        self.cov.n_blocks()
    }

    /// Snapshots and clears block coverage — call between scenario steps
    /// to obtain one spectrum row.
    pub fn take_coverage(&mut self) -> BlockSnapshot {
        self.cov.snapshot_and_reset()
    }

    // ---- behaviour --------------------------------------------------------

    /// Handles one remote-control key press, returning the observations
    /// the instrumented system emits (key press, outputs, modes).
    pub fn press(&mut self, now: SimTime, key: Key) -> Vec<Observation> {
        self.keys_handled += 1;
        let mut obs = vec![Observation::new(
            now,
            "remote",
            ObservationKind::KeyPress {
                key: key.event_name().to_owned(),
                code: key.payload(),
            },
        )];

        let mut ctx = FeatureCtx {
            now,
            cov: &mut self.cov,
            bank: &self.bank,
            faults: &self.faults,
            obs: &mut obs,
        };
        // Every key goes through input housekeeping.
        ctx.exec(FirmwareOp::Housekeeping, key.event_name().len() as u32);

        if !self.on {
            if key == Key::Power {
                Self::power_on(
                    &mut self.volume,
                    &mut self.tuner,
                    &mut self.screen,
                    &mut ctx,
                );
                self.on = true;
            }
            return obs;
        }

        match key {
            Key::Power => {
                Self::power_off(
                    &mut self.teletext,
                    &mut self.screen,
                    &mut self.sleep,
                    &mut ctx,
                );
                self.on = false;
            }
            Key::Digit(d) => {
                if self.screen.osd_has_focus() {
                    // Menu/EPG consume digits.
                    ctx.exec(FirmwareOp::Osd, 30 + d as u32);
                } else if self.teletext.is_on() {
                    self.teletext.digit(&mut ctx, d);
                } else {
                    self.tuner.digit(&mut ctx, d);
                }
            }
            Key::VolUp => self.volume.vol_up(&mut ctx),
            Key::VolDown => self.volume.vol_down(&mut ctx),
            Key::Mute => self.volume.mute(&mut ctx),
            Key::ChannelUp => {
                self.tuner.channel_up(&mut ctx);
                self.teletext.on_channel_change(&mut ctx);
            }
            Key::ChannelDown => {
                self.tuner.channel_down(&mut ctx);
                self.teletext.on_channel_change(&mut ctx);
            }
            Key::Teletext => {
                if self.screen.osd_has_focus() {
                    ctx.exec(FirmwareOp::Osd, 40);
                } else {
                    self.teletext.toggle(&mut ctx);
                    self.screen.emit_mode(&mut ctx, self.teletext.is_on());
                }
            }
            Key::DualScreen => self.screen.dual_toggle(&mut ctx, self.teletext.is_on()),
            Key::Menu => self.screen.menu(&mut ctx, self.teletext.is_on()),
            Key::Ok => {
                ctx.exec(FirmwareOp::Osd, 50);
            }
            Key::Back => {
                let consumed = self.screen.back(&mut ctx, self.teletext.is_on());
                if !consumed && self.teletext.is_on() {
                    self.teletext.force_off(&mut ctx);
                    self.screen.emit_mode(&mut ctx, false);
                }
            }
            Key::Epg => self.screen.epg(&mut ctx, self.teletext.is_on()),
            Key::Pip => self.screen.pip_toggle(&mut ctx, self.teletext.is_on()),
            Key::Source => self.screen.source_cycle(&mut ctx),
            Key::SwivelLeft => self.swivel.key(&mut ctx, true),
            Key::SwivelRight => self.swivel.key(&mut ctx, false),
            Key::Sleep => self.sleep.key(&mut ctx),
        }
        obs
    }

    /// Advances housekeeping time: sleep-timer expiry powers the set down.
    pub fn tick(&mut self, now: SimTime) -> Vec<Observation> {
        let mut obs = Vec::new();
        if self.on && self.sleep.tick(now, &self.faults) {
            let mut ctx = FeatureCtx {
                now,
                cov: &mut self.cov,
                bank: &self.bank,
                faults: &self.faults,
                obs: &mut obs,
            };
            Self::power_off(
                &mut self.teletext,
                &mut self.screen,
                &mut self.sleep,
                &mut ctx,
            );
            self.on = false;
        }
        obs
    }

    /// Run-time recovery: re-synchronizes the teletext decoder with the
    /// UI (repairs the persistent error left by a missed mode
    /// notification). Returns the observations the repair emits.
    pub fn resync_teletext(&mut self, now: SimTime) -> Vec<Observation> {
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now,
            cov: &mut self.cov,
            bank: &self.bank,
            faults: &self.faults,
            obs: &mut obs,
        };
        self.teletext.resync(&mut ctx);
        obs
    }

    /// Run-time recovery: forces the audio path to the given mute state
    /// (repairs a stuck mute after the inversion fault clears).
    pub fn force_audio(&mut self, now: SimTime, muted: bool) -> Vec<Observation> {
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now,
            cov: &mut self.cov,
            bank: &self.bank,
            faults: &self.faults,
            obs: &mut obs,
        };
        self.volume.force_mute_state(&mut ctx, muted);
        obs
    }

    // ---- active-observability entry points -------------------------------

    /// Samples the sleep-timer service's liveness heartbeat (active
    /// probing, paper §4.1): while the set is on and a timer is armed,
    /// the timer wheel reports its configured minutes from the
    /// `sleep.timer` source. Under [`TvFault::SleepTimerLost`] the
    /// mis-programmed wheel is silent — exactly the silence a
    /// [`detect::WatchdogDetector`]-based deadline monitor alarms on.
    /// Empty when the set is off or no timer is armed.
    pub fn timer_heartbeat(&mut self, now: SimTime) -> Vec<Observation> {
        if !self.on || !self.sleep.is_armed() || self.faults.is_active(TvFault::SleepTimerLost) {
            return Vec::new();
        }
        vec![Observation::new(
            now,
            "sleep.timer",
            ObservationKind::Value {
                name: "sleep.heartbeat".into(),
                value: self.sleep.minutes() as f64,
            },
        )]
    }

    /// Samples the swivel mode witness: command-vs-actuation
    /// consistency as two mode observations — `swivel.cmd` is
    /// `converged` when the motor reached its last commanded angle
    /// (`pending` otherwise, the [`TvFault::SwivelStuck`] signature),
    /// then `swivel.motor` reports `idle`, which is what a
    /// mode-consistency rule keys its check off. Empty in standby.
    pub fn witness_swivel(&mut self, now: SimTime) -> Vec<Observation> {
        if !self.on {
            return Vec::new();
        }
        let cmd = if self.swivel.converged() {
            "converged"
        } else {
            "pending"
        };
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now,
            cov: &mut self.cov,
            bank: &self.bank,
            faults: &self.faults,
            obs: &mut obs,
        };
        ctx.mode("swivel.cmd", cmd);
        ctx.mode("swivel.motor", "idle");
        obs
    }

    /// True while an on-screen display (menu or EPG) holds input focus
    /// — the menu witness's ground truth after a probe's open/close
    /// round-trip.
    pub fn osd_has_focus(&self) -> bool {
        self.screen.osd_has_focus()
    }

    // ---- micro-reboot units ----------------------------------------------

    /// The independently restartable pipeline units, in checkpoint order.
    pub const UNITS: [&'static str; 6] =
        ["audio", "screen", "sleep", "swivel", "teletext", "tuner"];

    /// The unit that would serve `key` in the current focus state — the
    /// routing the micro-reboot journal and outage model key off.
    pub fn serving_unit(&self, key: Key) -> &'static str {
        match key {
            Key::Power => "screen",
            Key::Digit(_) => {
                if self.screen.osd_has_focus() {
                    "screen"
                } else if self.teletext.is_on() {
                    "teletext"
                } else {
                    "tuner"
                }
            }
            Key::VolUp | Key::VolDown | Key::Mute => "audio",
            Key::ChannelUp | Key::ChannelDown => "tuner",
            Key::Teletext => {
                if self.screen.osd_has_focus() {
                    "screen"
                } else {
                    "teletext"
                }
            }
            Key::Back => {
                if self.screen.osd_has_focus() {
                    "screen"
                } else if self.teletext.is_on() {
                    "teletext"
                } else {
                    "screen"
                }
            }
            Key::DualScreen | Key::Menu | Key::Ok | Key::Epg | Key::Pip | Key::Source => "screen",
            Key::SwivelLeft | Key::SwivelRight => "swivel",
            Key::Sleep => "sleep",
        }
    }

    /// The named unit's complete state as a checkpointable map; `None`
    /// for an unknown unit name.
    pub fn unit_state(&self, unit: &str) -> Option<UnitState> {
        match unit {
            "audio" => Some(self.volume.snapshot()),
            "tuner" => Some(self.tuner.snapshot()),
            "teletext" => Some(self.teletext.snapshot()),
            "screen" => Some(self.screen.snapshot()),
            "sleep" => Some(self.sleep.snapshot()),
            "swivel" => Some(self.swivel.snapshot()),
            _ => None,
        }
    }

    /// Micro-reboot: overwrites the named unit's state from a validated
    /// checkpoint, leaving every other unit untouched. Returns false for
    /// an unknown unit name.
    pub fn restore_unit(&mut self, unit: &str, state: &UnitState) -> bool {
        match unit {
            "audio" => self.volume.restore(state),
            "tuner" => self.tuner.restore(state),
            "teletext" => self.teletext.restore(state),
            "screen" => self.screen.restore(state),
            "sleep" => self.sleep.restore(state),
            "swivel" => self.swivel.restore(state),
            _ => return false,
        }
        true
    }

    /// Full-restart fallback: reboots the named unit to factory defaults
    /// (used when a unit's whole checkpoint history failed validation).
    /// Returns false for an unknown unit name.
    pub fn reset_unit(&mut self, unit: &str) -> bool {
        match unit {
            "audio" => self.volume = Volume::new(),
            "tuner" => self.tuner = ChannelTuner::new(),
            "teletext" => self.teletext = Teletext::new(),
            "screen" => self.screen = ScreenManager::new(),
            "sleep" => self.sleep = SleepTimer::new(),
            "swivel" => self.swivel = Swivel::new(),
            _ => return false,
        }
        true
    }

    /// Announces the named unit's current state on its outputs — called
    /// after a restore so the observation boundary (and the comparator
    /// behind it) sees the post-reboot state. Returns the emitted
    /// observations, empty for an unknown unit.
    pub fn announce_unit(&mut self, now: SimTime, unit: &str) -> Vec<Observation> {
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now,
            cov: &mut self.cov,
            bank: &self.bank,
            faults: &self.faults,
            obs: &mut obs,
        };
        match unit {
            "audio" => {
                ctx.output("volume", self.volume.audible());
                ctx.output("audio.muted", self.volume.is_muted() as i64);
            }
            "tuner" => ctx.output("channel", self.tuner.current()),
            "teletext" => self.teletext.announce(&mut ctx),
            "screen" => {
                self.screen.emit_mode(&mut ctx, self.teletext.is_on());
                ctx.output("source", self.screen.source());
            }
            "sleep" => ctx.output("sleep.minutes", self.sleep.minutes() as i64),
            "swivel" => ctx.output("swivel.angle", self.swivel.angle()),
            _ => {}
        }
        obs
    }

    /// Replays a journalled key press directly into the named unit's
    /// handler, bypassing focus routing — state reconciliation after a
    /// micro-reboot. The rest of the system already processed this press,
    /// so cross-unit side effects are deliberately not re-run. Returns
    /// the (discardable) observations the replay emits.
    pub fn replay_unit_key(&mut self, now: SimTime, unit: &str, key: Key) -> Vec<Observation> {
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now,
            cov: &mut self.cov,
            bank: &self.bank,
            faults: &self.faults,
            obs: &mut obs,
        };
        match (unit, key) {
            ("audio", Key::VolUp) => self.volume.vol_up(&mut ctx),
            ("audio", Key::VolDown) => self.volume.vol_down(&mut ctx),
            ("audio", Key::Mute) => self.volume.mute(&mut ctx),
            ("tuner", Key::Digit(d)) => self.tuner.digit(&mut ctx, d),
            ("tuner", Key::ChannelUp) => self.tuner.channel_up(&mut ctx),
            ("tuner", Key::ChannelDown) => self.tuner.channel_down(&mut ctx),
            ("teletext", Key::Digit(d)) if self.teletext.is_on() => {
                self.teletext.digit(&mut ctx, d);
            }
            ("teletext", Key::Teletext) => self.teletext.toggle(&mut ctx),
            ("teletext", Key::Back) => self.teletext.force_off(&mut ctx),
            ("screen", Key::Menu) => self.screen.menu(&mut ctx, self.teletext.is_on()),
            ("screen", Key::Epg) => self.screen.epg(&mut ctx, self.teletext.is_on()),
            ("screen", Key::DualScreen) => {
                self.screen.dual_toggle(&mut ctx, self.teletext.is_on());
            }
            ("screen", Key::Pip) => self.screen.pip_toggle(&mut ctx, self.teletext.is_on()),
            ("screen", Key::Source) => self.screen.source_cycle(&mut ctx),
            ("screen", Key::Back) => {
                self.screen.back(&mut ctx, self.teletext.is_on());
            }
            ("sleep", Key::Sleep) => self.sleep.key(&mut ctx),
            ("swivel", Key::SwivelLeft) => self.swivel.key(&mut ctx, true),
            ("swivel", Key::SwivelRight) => self.swivel.key(&mut ctx, false),
            // Power cycles and OSD-swallowed keys carry no unit-local
            // state; replay ignores them.
            _ => {}
        }
        obs
    }

    fn power_on(
        volume: &mut Volume,
        tuner: &mut ChannelTuner,
        screen: &mut ScreenManager,
        ctx: &mut FeatureCtx<'_>,
    ) {
        ctx.exec(FirmwareOp::Boot, 0);
        ctx.exec(FirmwareOp::Tune, tuner.current() as u32);
        screen.reset();
        // The set announces its restored state on the outputs.
        ctx.output("screen.mode", "video");
        ctx.mode("scaler", "video");
        ctx.output("volume", volume.audible());
        ctx.output("audio.muted", volume.is_muted() as i64);
        ctx.output("channel", tuner.current());
    }

    fn power_off(
        teletext: &mut Teletext,
        screen: &mut ScreenManager,
        sleep: &mut SleepTimer,
        ctx: &mut FeatureCtx<'_>,
    ) {
        ctx.exec(FirmwareOp::Boot, 1);
        teletext.force_off(ctx);
        screen.reset();
        sleep.reset();
        ctx.output("screen.mode", "off");
        ctx.mode("scaler", "off");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use observe::ObsValue;
    use simkit::SimDuration;

    fn last_output(obs: &[Observation], name: &str) -> Option<ObsValue> {
        obs.iter()
            .filter_map(|o| o.as_output())
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v.clone())
            .next_back()
    }

    fn on_tv() -> TvSystem {
        let mut tv = TvSystem::new();
        tv.press(SimTime::ZERO, Key::Power);
        tv.take_coverage();
        tv
    }

    #[test]
    fn timer_heartbeat_tracks_arming_and_fault() {
        let mut tv = on_tv();
        assert!(
            tv.timer_heartbeat(SimTime::ZERO).is_empty(),
            "no heartbeat while disarmed"
        );
        tv.press(SimTime::ZERO, Key::Sleep);
        let hb = tv.timer_heartbeat(SimTime::from_millis(50));
        assert_eq!(hb.len(), 1);
        assert_eq!(hb[0].source, "sleep.timer");
        tv.inject_fault(TvFault::SleepTimerLost);
        assert!(
            tv.timer_heartbeat(SimTime::from_millis(100)).is_empty(),
            "the lost interrupt silences the heartbeat"
        );
        tv.clear_fault(TvFault::SleepTimerLost);
        assert_eq!(tv.timer_heartbeat(SimTime::from_millis(150)).len(), 1);
    }

    #[test]
    fn swivel_witness_reports_convergence() {
        let mut tv = on_tv();
        let obs = tv.witness_swivel(SimTime::ZERO);
        assert_eq!(obs.len(), 2);
        assert!(matches!(
            &obs[0].kind,
            ObservationKind::Mode { component, mode }
                if component == "swivel.cmd" && mode == "converged"
        ));
        tv.inject_fault(TvFault::SwivelStuck);
        tv.press(SimTime::ZERO, Key::SwivelRight);
        let obs = tv.witness_swivel(SimTime::ZERO);
        assert!(matches!(
            &obs[0].kind,
            ObservationKind::Mode { component, mode }
                if component == "swivel.cmd" && mode == "pending"
        ));
        assert!(matches!(
            &obs[1].kind,
            ObservationKind::Mode { component, mode }
                if component == "swivel.motor" && mode == "idle"
        ));
    }

    #[test]
    fn standby_ignores_everything_but_power() {
        let mut tv = TvSystem::new();
        assert!(!tv.is_on());
        let obs = tv.press(SimTime::ZERO, Key::VolUp);
        assert_eq!(tv.volume_level(), 20);
        assert!(last_output(&obs, "volume").is_none());
        tv.press(SimTime::ZERO, Key::Power);
        assert!(tv.is_on());
        assert_eq!(tv.screen_mode(), "video");
    }

    #[test]
    fn power_on_announces_state() {
        let mut tv = TvSystem::new();
        let obs = tv.press(SimTime::ZERO, Key::Power);
        assert_eq!(last_output(&obs, "volume"), Some(ObsValue::Num(20.0)));
        assert_eq!(last_output(&obs, "channel"), Some(ObsValue::Num(1.0)));
        assert_eq!(
            last_output(&obs, "screen.mode"),
            Some(ObsValue::Text("video".into()))
        );
    }

    #[test]
    fn power_off_resets_ui_state() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::Teletext);
        tv.press(SimTime::ZERO, Key::Menu);
        let obs = tv.press(SimTime::ZERO, Key::Power);
        assert!(!tv.is_on());
        assert_eq!(tv.screen_mode(), "off");
        assert_eq!(
            last_output(&obs, "screen.mode"),
            Some(ObsValue::Text("off".into()))
        );
        // Back on: teletext and menu are gone, volume persists.
        tv.press(SimTime::ZERO, Key::Power);
        assert_eq!(tv.screen_mode(), "video");
        assert!(!tv.teletext().is_on());
    }

    #[test]
    fn volume_flow_end_to_end() {
        let mut tv = on_tv();
        let obs = tv.press(SimTime::ZERO, Key::VolUp);
        assert_eq!(last_output(&obs, "volume"), Some(ObsValue::Num(25.0)));
        let obs = tv.press(SimTime::ZERO, Key::Mute);
        assert_eq!(last_output(&obs, "volume"), Some(ObsValue::Num(0.0)));
        assert_eq!(last_output(&obs, "audio.muted"), Some(ObsValue::Num(1.0)));
    }

    #[test]
    fn digit_routes_by_focus() {
        let mut tv = on_tv();
        // No teletext: digit tunes.
        tv.press(SimTime::ZERO, Key::Digit(5));
        assert_eq!(tv.channel(), 5);
        // Teletext on: digits navigate pages.
        tv.press(SimTime::ZERO, Key::Teletext);
        for d in [1, 2, 3] {
            tv.press(SimTime::ZERO, Key::Digit(d));
        }
        assert_eq!(tv.teletext().page(), 123);
        assert_eq!(tv.channel(), 5);
        // Menu open: digits are swallowed.
        tv.press(SimTime::ZERO, Key::Menu);
        tv.press(SimTime::ZERO, Key::Digit(9));
        assert_eq!(tv.teletext().page(), 123);
        assert_eq!(tv.channel(), 5);
    }

    #[test]
    fn teletext_suppressed_while_menu_open() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::Menu);
        tv.press(SimTime::ZERO, Key::Teletext);
        assert!(!tv.teletext().is_on());
        assert_eq!(tv.screen_mode(), "menu");
    }

    #[test]
    fn back_closes_in_order() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::Teletext);
        tv.press(SimTime::ZERO, Key::Menu);
        assert_eq!(tv.screen_mode(), "menu");
        tv.press(SimTime::ZERO, Key::Back); // closes menu, teletext remains
        assert_eq!(tv.screen_mode(), "teletext");
        tv.press(SimTime::ZERO, Key::Back); // closes teletext
        assert_eq!(tv.screen_mode(), "video");
    }

    #[test]
    fn channel_change_rerenders_teletext() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::Teletext);
        for d in [2, 2, 2] {
            tv.press(SimTime::ZERO, Key::Digit(d));
        }
        assert_eq!(tv.teletext().page(), 222);
        let obs = tv.press(SimTime::ZERO, Key::ChannelUp);
        assert_eq!(tv.teletext().page(), 100);
        assert_eq!(
            last_output(&obs, "teletext.page"),
            Some(ObsValue::Num(100.0))
        );
        assert_eq!(tv.channel(), 2);
    }

    #[test]
    fn sleep_timer_powers_down() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::Sleep);
        assert_eq!(tv.sleep_timer().minutes(), 15);
        let obs = tv.tick(SimTime::from_secs(15 * 60));
        assert!(!tv.is_on());
        assert_eq!(
            last_output(&obs, "screen.mode"),
            Some(ObsValue::Text("off".into()))
        );
    }

    #[test]
    fn sleep_timer_lost_fault_keeps_tv_on() {
        let mut tv = on_tv();
        tv.inject_fault(TvFault::SleepTimerLost);
        tv.press(SimTime::ZERO, Key::Sleep);
        tv.tick(SimTime::from_secs(20 * 60));
        assert!(tv.is_on());
    }

    #[test]
    fn coverage_accumulates_per_step() {
        let mut tv = TvSystem::new();
        tv.press(SimTime::ZERO, Key::Power);
        let snap = tv.take_coverage();
        // Boot + tune + housekeeping: thousands of blocks.
        assert!(snap.count() > 3_000, "count={}", snap.count());
        // After reset, a volume key touches far fewer.
        tv.press(SimTime::ZERO, Key::VolUp);
        let snap = tv.take_coverage();
        assert!(snap.count() < 2_000, "count={}", snap.count());
        assert!(snap.count() > 300);
    }

    #[test]
    fn render_fault_block_hit_exactly_on_faulty_branch() {
        let mut tv = on_tv();
        tv.inject_fault(TvFault::TeletextRenderFault);
        let fault_block = tv.bank().teletext_fault_block();
        // Volume key: no render.
        tv.press(SimTime::ZERO, Key::VolUp);
        assert!(!tv.take_coverage().is_hit(fault_block));
        // Teletext on at page 100: renders, but bit 3 clear — the faulty
        // branch is not taken, the page displays correctly.
        let obs = tv.press(SimTime::ZERO, Key::Teletext);
        assert!(!tv.take_coverage().is_hit(fault_block));
        assert_eq!(
            last_output(&obs, "teletext.page"),
            Some(ObsValue::Num(100.0))
        );
        // Page 123 (bit 3 set): faulty branch executes and corrupts.
        tv.press(SimTime::ZERO, Key::Digit(1));
        tv.press(SimTime::ZERO, Key::Digit(2));
        let obs = tv.press(SimTime::ZERO, Key::Digit(3));
        assert!(tv.take_coverage().is_hit(fault_block));
        assert_eq!(
            last_output(&obs, "teletext.page"),
            Some(ObsValue::Num(130.0))
        );
    }

    #[test]
    fn swivel_and_source() {
        let mut tv = on_tv();
        let obs = tv.press(SimTime::ZERO, Key::SwivelRight);
        assert_eq!(last_output(&obs, "swivel.angle"), Some(ObsValue::Num(15.0)));
        let obs = tv.press(SimTime::ZERO, Key::Source);
        assert_eq!(last_output(&obs, "source"), Some(ObsValue::Num(1.0)));
    }

    #[test]
    fn dual_and_teletext_compose() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::DualScreen);
        tv.press(SimTime::ZERO, Key::Teletext);
        assert_eq!(tv.screen_mode(), "dual+teletext");
    }

    #[test]
    fn unit_snapshots_round_trip() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::VolUp);
        tv.press(SimTime::ZERO, Key::Mute);
        tv.press(SimTime::ZERO, Key::Digit(7));
        tv.press(SimTime::ZERO, Key::Teletext);
        tv.press(SimTime::ZERO, Key::Digit(1));
        tv.press(SimTime::ZERO, Key::SwivelRight);
        tv.tuner_mut().lock_channel(13);
        let states: Vec<_> = TvSystem::UNITS
            .iter()
            .map(|u| (u, tv.unit_state(u).unwrap()))
            .collect();
        // Mutate everything, then restore each unit from its snapshot.
        tv.press(SimTime::ZERO, Key::Digit(2));
        tv.press(SimTime::ZERO, Key::Digit(3)); // page 123 entered
        tv.press(SimTime::ZERO, Key::Mute);
        tv.press(SimTime::ZERO, Key::SwivelLeft);
        for (unit, state) in &states {
            assert!(tv.restore_unit(unit, state), "unknown unit {unit}");
        }
        for (unit, state) in &states {
            assert_eq!(&tv.unit_state(unit).unwrap(), state, "unit {unit}");
        }
        assert_eq!(tv.volume_level(), 25);
        assert!(tv.is_muted());
        assert_eq!(tv.channel(), 7);
        assert!(tv.teletext().is_on());
        assert!(tv.tuner_mut().is_locked(13));
        assert_eq!(tv.swivel().angle(), 15);
    }

    #[test]
    fn restore_touches_only_the_named_unit() {
        let mut tv = on_tv();
        let audio = tv.unit_state("audio").unwrap();
        tv.press(SimTime::ZERO, Key::VolUp); // 25
        tv.press(SimTime::ZERO, Key::Digit(9));
        tv.restore_unit("audio", &audio);
        assert_eq!(tv.volume_level(), 20, "audio restored");
        assert_eq!(tv.channel(), 9, "tuner untouched");
    }

    #[test]
    fn reset_unit_reboots_to_defaults() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::VolUp);
        assert!(tv.reset_unit("audio"));
        assert_eq!(tv.volume_level(), 20);
        assert!(!tv.reset_unit("nonsense"));
        assert!(tv.unit_state("nonsense").is_none());
    }

    #[test]
    fn serving_unit_follows_focus() {
        let mut tv = on_tv();
        assert_eq!(tv.serving_unit(Key::Digit(5)), "tuner");
        assert_eq!(tv.serving_unit(Key::VolUp), "audio");
        assert_eq!(tv.serving_unit(Key::Back), "screen");
        tv.press(SimTime::ZERO, Key::Teletext);
        assert_eq!(tv.serving_unit(Key::Digit(5)), "teletext");
        assert_eq!(tv.serving_unit(Key::Back), "teletext");
        tv.press(SimTime::ZERO, Key::Menu);
        assert_eq!(tv.serving_unit(Key::Digit(5)), "screen");
        assert_eq!(tv.serving_unit(Key::Teletext), "screen");
        assert_eq!(tv.serving_unit(Key::Sleep), "sleep");
        assert_eq!(tv.serving_unit(Key::SwivelLeft), "swivel");
    }

    #[test]
    fn announce_reemits_current_outputs() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::VolUp);
        let obs = tv.announce_unit(SimTime::ZERO, "audio");
        assert_eq!(last_output(&obs, "volume"), Some(ObsValue::Num(25.0)));
        assert_eq!(last_output(&obs, "audio.muted"), Some(ObsValue::Num(0.0)));
        let obs = tv.announce_unit(SimTime::ZERO, "teletext");
        assert_eq!(
            last_output(&obs, "teletext.page"),
            Some(ObsValue::Num(0.0)),
            "teletext off renders page 0"
        );
        assert!(tv.announce_unit(SimTime::ZERO, "bogus").is_empty());
    }

    #[test]
    fn replay_reconciles_restored_unit() {
        let mut tv = on_tv();
        // Checkpoint, then two presses the journal must reapply.
        let audio = tv.unit_state("audio").unwrap();
        tv.press(SimTime::ZERO, Key::VolUp);
        tv.press(SimTime::ZERO, Key::VolUp);
        assert_eq!(tv.volume_level(), 30);
        // Micro-reboot: restore the checkpoint, replay the journal.
        tv.restore_unit("audio", &audio);
        assert_eq!(tv.volume_level(), 20);
        tv.replay_unit_key(SimTime::ZERO, "audio", Key::VolUp);
        tv.replay_unit_key(SimTime::ZERO, "audio", Key::VolUp);
        assert_eq!(tv.volume_level(), 30, "journal replay converges");
        // Replay bypasses focus routing: a tuner digit retunes even
        // though teletext has focus for live presses.
        tv.press(SimTime::ZERO, Key::Teletext);
        tv.replay_unit_key(SimTime::ZERO, "tuner", Key::Digit(4));
        assert_eq!(tv.channel(), 4);
        assert_eq!(tv.teletext().page(), 100, "teletext unaffected");
    }

    #[test]
    fn tick_before_expiry_is_quiet() {
        let mut tv = on_tv();
        tv.press(SimTime::ZERO, Key::Sleep);
        assert!(tv
            .tick(SimTime::from_secs(60) - SimDuration::from_secs(1))
            .is_empty());
        assert!(tv.is_on());
    }
}
