//! Sleep timer and motorized swivel.
//!
//! The swivel matters for the user-perception study (paper Sect. 4.6):
//! users rank both image quality and the swivel as important, tolerate bad
//! image quality (attributed externally), but are irritated when the
//! swivel fails (attributed to the product).

use super::FeatureCtx;
use crate::blocks::{BlockMap, FirmwareOp};
use crate::faults::TvFault;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// Sleep-timer step per key press.
pub const SLEEP_STEP_MIN: u64 = 15;
/// Maximum sleep-timer setting.
pub const SLEEP_MAX_MIN: u64 = 120;

/// The sleep timer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SleepTimer {
    /// Minutes configured (0 = off).
    minutes: u64,
    /// When the timer fires, if armed.
    fires_at: Option<SimTime>,
}

impl SleepTimer {
    /// Creates a disarmed timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configured minutes (0 when off).
    pub fn minutes(&self) -> u64 {
        self.minutes
    }

    /// True while armed.
    pub fn is_armed(&self) -> bool {
        self.fires_at.is_some()
    }

    /// When the timer will fire.
    pub fn fires_at(&self) -> Option<SimTime> {
        self.fires_at
    }

    /// Handles the sleep key: extends in 15-minute steps, wrapping to off
    /// after the maximum.
    pub fn key(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::SLEEP);
        self.minutes += SLEEP_STEP_MIN;
        if self.minutes > SLEEP_MAX_MIN {
            ctx.hit(BlockMap::SLEEP + 1);
            self.minutes = 0;
            self.fires_at = None;
        } else {
            ctx.hit(BlockMap::SLEEP + 2);
            self.fires_at = Some(ctx.now + SimDuration::from_secs(self.minutes * 60));
        }
        ctx.exec(FirmwareOp::Osd, 20 + self.minutes as u32);
        ctx.output("sleep.minutes", self.minutes as i64);
    }

    /// Checks expiry; returns true exactly once when the timer fires
    /// (the TV must then power down).
    ///
    /// Under [`TvFault::SleepTimerLost`] the timer never fires.
    pub fn tick(&mut self, now: SimTime, faults: &crate::faults::FaultSet) -> bool {
        let Some(at) = self.fires_at else {
            return false;
        };
        if now < at {
            return false;
        }
        if faults.is_active(TvFault::SleepTimerLost) {
            // Fault: the expiry interrupt is lost; timer stays pending.
            return false;
        }
        self.fires_at = None;
        self.minutes = 0;
        true
    }

    /// Disarms (power-off).
    pub fn reset(&mut self) {
        self.minutes = 0;
        self.fires_at = None;
    }

    /// Micro-reboot checkpoint: configured minutes plus the armed expiry
    /// instant (nanoseconds; `armed` gates it).
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, f64> {
        let mut s = std::collections::BTreeMap::new();
        s.insert("minutes".to_string(), self.minutes as f64);
        s.insert(
            "armed".to_string(),
            f64::from(u8::from(self.fires_at.is_some())),
        );
        s.insert(
            "fires_at_ns".to_string(),
            self.fires_at.map_or(0.0, |t| t.as_nanos() as f64),
        );
        s
    }

    /// Micro-reboot restore: rebuilds the timer from a checkpoint.
    pub fn restore(&mut self, s: &std::collections::BTreeMap<String, f64>) {
        self.minutes = s
            .get("minutes")
            .map_or(0, |v| (*v as u64).min(SLEEP_MAX_MIN));
        let armed = s.get("armed").is_some_and(|v| *v != 0.0);
        self.fires_at = if armed {
            s.get("fires_at_ns").map(|v| SimTime::from_nanos(*v as u64))
        } else {
            None
        };
    }
}

/// Swivel step per key press, degrees.
pub const SWIVEL_STEP: i64 = 15;
/// Swivel range limit, degrees.
pub const SWIVEL_MAX: i64 = 45;

/// The motorized swivel.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Swivel {
    angle: i64,
    /// The last commanded target angle — what the motor *should* be at.
    /// Tracked regardless of faults so a mode witness can compare
    /// command against actuation; not part of the micro-reboot
    /// checkpoint (a restore re-bases the command on the restored
    /// angle).
    #[serde(default)]
    last_cmd: i64,
}

impl Swivel {
    /// Creates a centered swivel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current angle in degrees (negative = left).
    pub fn angle(&self) -> i64 {
        self.angle
    }

    /// The last commanded target angle (clamped to the travel range).
    pub fn last_cmd(&self) -> i64 {
        self.last_cmd
    }

    /// True when the motor has reached the last commanded angle — the
    /// mode witness's command-vs-actuation check.
    pub fn converged(&self) -> bool {
        self.last_cmd == self.angle
    }

    /// Handles a swivel key; `left` selects direction.
    pub fn key(&mut self, ctx: &mut FeatureCtx<'_>, left: bool) {
        ctx.hit(BlockMap::SWIVEL);
        let delta = if left { -SWIVEL_STEP } else { SWIVEL_STEP };
        self.last_cmd = (self.angle + delta).clamp(-SWIVEL_MAX, SWIVEL_MAX);
        if ctx.faults.is_active(TvFault::SwivelStuck) {
            // Fault: the motor driver ignores the command.
            ctx.hit(BlockMap::SWIVEL + 1);
        } else {
            ctx.hit(BlockMap::SWIVEL + 2);
            self.angle = self.last_cmd;
        }
        ctx.exec(FirmwareOp::Motor, (self.angle + SWIVEL_MAX) as u32);
        ctx.output("swivel.angle", self.angle);
    }

    /// Micro-reboot checkpoint: the motor angle.
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, f64> {
        let mut s = std::collections::BTreeMap::new();
        s.insert("angle".to_string(), self.angle as f64);
        s
    }

    /// Micro-reboot restore: rebuilds the swivel from a checkpoint. The
    /// command is re-based on the restored angle — a reboot clears any
    /// pending (possibly fault-swallowed) motion.
    pub fn restore(&mut self, s: &std::collections::BTreeMap<String, f64>) {
        self.angle = s
            .get("angle")
            .map_or(0, |v| (*v as i64).clamp(-SWIVEL_MAX, SWIVEL_MAX));
        self.last_cmd = self.angle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::SyntheticCodeBank;
    use crate::faults::FaultSet;
    use observe::BlockCoverage;

    fn with_ctx<R>(now: SimTime, faults: &FaultSet, f: impl FnOnce(&mut FeatureCtx<'_>) -> R) -> R {
        let mut cov = BlockCoverage::new(crate::blocks::N_BLOCKS);
        let bank = SyntheticCodeBank::default();
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now,
            cov: &mut cov,
            bank: &bank,
            faults,
            obs: &mut obs,
        };
        f(&mut ctx)
    }

    #[test]
    fn sleep_extends_then_wraps_off() {
        let faults = FaultSet::none();
        let mut s = SleepTimer::new();
        for expect in [15, 30, 45, 60, 75, 90, 105, 120] {
            with_ctx(SimTime::ZERO, &faults, |c| s.key(c));
            assert_eq!(s.minutes(), expect);
            assert!(s.is_armed());
        }
        with_ctx(SimTime::ZERO, &faults, |c| s.key(c));
        assert_eq!(s.minutes(), 0);
        assert!(!s.is_armed());
    }

    #[test]
    fn sleep_fires_once() {
        let faults = FaultSet::none();
        let mut s = SleepTimer::new();
        with_ctx(SimTime::ZERO, &faults, |c| s.key(c)); // 15 min
        let fire_time = SimTime::from_secs(15 * 60);
        assert!(!s.tick(fire_time - SimDuration::from_secs(1), &faults));
        assert!(s.tick(fire_time, &faults));
        assert!(!s.tick(fire_time + SimDuration::from_secs(1), &faults));
        assert!(!s.is_armed());
    }

    #[test]
    fn sleep_lost_fault_never_fires() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::SleepTimerLost);
        let mut s = SleepTimer::new();
        with_ctx(SimTime::ZERO, &faults, |c| s.key(c));
        assert!(!s.tick(SimTime::from_secs(10_000), &faults));
        assert!(s.is_armed(), "timer remains pending forever");
    }

    #[test]
    fn swivel_moves_and_clamps() {
        let faults = FaultSet::none();
        let mut sw = Swivel::new();
        with_ctx(SimTime::ZERO, &faults, |c| sw.key(c, false));
        assert_eq!(sw.angle(), 15);
        for _ in 0..10 {
            with_ctx(SimTime::ZERO, &faults, |c| sw.key(c, false));
        }
        assert_eq!(sw.angle(), SWIVEL_MAX);
        for _ in 0..20 {
            with_ctx(SimTime::ZERO, &faults, |c| sw.key(c, true));
        }
        assert_eq!(sw.angle(), -SWIVEL_MAX);
    }

    #[test]
    fn swivel_stuck_fault() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::SwivelStuck);
        let mut sw = Swivel::new();
        with_ctx(SimTime::ZERO, &faults, |c| sw.key(c, false));
        assert_eq!(sw.angle(), 0, "motor must not move under the fault");
        assert_eq!(sw.last_cmd(), 15, "the command itself was registered");
        assert!(!sw.converged(), "witness sees command != actuation");
    }

    #[test]
    fn swivel_restore_rebases_the_command() {
        let faults = FaultSet::none();
        let mut sw = Swivel::new();
        with_ctx(SimTime::ZERO, &faults, |c| sw.key(c, false));
        assert!(sw.converged());
        let snap = sw.snapshot();
        let mut stuck = FaultSet::none();
        stuck.inject(TvFault::SwivelStuck);
        with_ctx(SimTime::ZERO, &stuck, |c| sw.key(c, false));
        assert!(!sw.converged());
        sw.restore(&snap);
        assert_eq!(sw.angle(), 15);
        assert!(sw.converged(), "restore clears the pending command");
    }
}
