//! Screen / OSD management — where the feature interactions live.
//!
//! The paper singles out "relations between dual screen, teletext and
//! various types of on-screen displays that remove or suppress each other"
//! as the modeling hazard (Sect. 4.2). This manager implements the
//! suppression lattice: menu > EPG > teletext > dual > PiP > video.

use super::FeatureCtx;
use crate::blocks::{BlockMap, FirmwareOp};
use crate::faults::TvFault;
use serde::{Deserialize, Serialize};

/// The screen/OSD manager.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScreenManager {
    menu_open: bool,
    epg_open: bool,
    dual: bool,
    pip: bool,
    source: i64,
}

impl ScreenManager {
    /// Creates the manager with everything closed.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while the menu is open.
    pub fn menu_open(&self) -> bool {
        self.menu_open
    }

    /// True while the EPG is open.
    pub fn epg_open(&self) -> bool {
        self.epg_open
    }

    /// True while dual-screen is enabled.
    pub fn dual(&self) -> bool {
        self.dual
    }

    /// True while picture-in-picture is enabled.
    pub fn pip(&self) -> bool {
        self.pip
    }

    /// The selected input source (0–3).
    pub fn source(&self) -> i64 {
        self.source
    }

    /// True when an OSD (menu or EPG) has input focus — digits and the
    /// teletext key are consumed without effect then.
    pub fn osd_has_focus(&self) -> bool {
        self.menu_open || self.epg_open
    }

    /// The user-visible screen mode given whether teletext is on.
    pub fn mode(&self, teletext_on: bool) -> &'static str {
        if self.menu_open {
            "menu"
        } else if self.epg_open {
            "epg"
        } else if teletext_on {
            if self.dual {
                "dual+teletext"
            } else {
                "teletext"
            }
        } else if self.dual {
            "dual"
        } else if self.pip {
            "pip"
        } else {
            "video"
        }
    }

    /// Emits the screen-mode output.
    pub fn emit_mode(&self, ctx: &mut FeatureCtx<'_>, teletext_on: bool) {
        ctx.output("screen.mode", self.mode(teletext_on));
        ctx.mode("scaler", self.mode(teletext_on));
    }

    /// Handles the menu key.
    pub fn menu(&mut self, ctx: &mut FeatureCtx<'_>, teletext_on: bool) {
        ctx.hit(BlockMap::SCREEN);
        self.menu_open = !self.menu_open;
        if self.menu_open {
            // Opening the menu closes the EPG (OSDs suppress each other).
            self.epg_open = false;
        }
        ctx.exec(FirmwareOp::Osd, self.menu_open as u32);
        self.emit_mode(ctx, teletext_on);
    }

    /// Handles the back key. Returns true if the key was consumed by an
    /// OSD (so the caller must not also close teletext).
    pub fn back(&mut self, ctx: &mut FeatureCtx<'_>, teletext_on: bool) -> bool {
        ctx.hit(BlockMap::SCREEN + 1);
        if self.menu_open {
            if ctx.faults.is_active(TvFault::MenuFreeze) {
                // Fault: the close handler was unregistered; menu stays.
                ctx.hit(BlockMap::SCREEN + 2);
            } else {
                ctx.hit(BlockMap::SCREEN + 3);
                self.menu_open = false;
            }
            ctx.exec(FirmwareOp::Osd, 2);
            self.emit_mode(ctx, teletext_on);
            return true;
        }
        if self.epg_open {
            ctx.hit(BlockMap::SCREEN + 4);
            self.epg_open = false;
            ctx.exec(FirmwareOp::Osd, 3);
            self.emit_mode(ctx, teletext_on);
            return true;
        }
        false
    }

    /// Handles the EPG key.
    pub fn epg(&mut self, ctx: &mut FeatureCtx<'_>, teletext_on: bool) {
        ctx.hit(BlockMap::EPG);
        if self.menu_open {
            // Menu has focus: EPG key ignored.
            ctx.hit(BlockMap::EPG + 1);
            return;
        }
        self.epg_open = !self.epg_open;
        if self.epg_open {
            ctx.exec(FirmwareOp::EpgQuery, 0);
        }
        ctx.exec(FirmwareOp::Osd, 4);
        self.emit_mode(ctx, teletext_on);
    }

    /// Handles the dual-screen key.
    pub fn dual_toggle(&mut self, ctx: &mut FeatureCtx<'_>, teletext_on: bool) {
        ctx.hit(BlockMap::SCREEN + 5);
        self.dual = !self.dual;
        if self.dual {
            // Dual screen and PiP are mutually exclusive compositions.
            self.pip = false;
        }
        ctx.exec(FirmwareOp::Compose, self.dual as u32 + 1);
        self.emit_mode(ctx, teletext_on);
    }

    /// Handles the PiP key.
    pub fn pip_toggle(&mut self, ctx: &mut FeatureCtx<'_>, teletext_on: bool) {
        ctx.hit(BlockMap::SCREEN + 6);
        self.pip = !self.pip;
        if self.pip {
            self.dual = false;
        }
        ctx.exec(FirmwareOp::Compose, self.pip as u32 + 3);
        self.emit_mode(ctx, teletext_on);
    }

    /// Handles the source key (cycles 0–3).
    pub fn source_cycle(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::SCREEN + 7);
        self.source = (self.source + 1) % 4;
        ctx.exec(FirmwareOp::Compose, 8 + self.source as u32);
        ctx.output("source", self.source);
    }

    /// Resets the UI state (power off). The input source is a *setting*
    /// and persists across standby, like volume and channel.
    pub fn reset(&mut self) {
        let source = self.source;
        *self = ScreenManager::default();
        self.source = source;
    }

    /// Micro-reboot checkpoint: OSD flags, composition, input source.
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, f64> {
        let mut s = std::collections::BTreeMap::new();
        s.insert("menu_open".to_string(), f64::from(u8::from(self.menu_open)));
        s.insert("epg_open".to_string(), f64::from(u8::from(self.epg_open)));
        s.insert("dual".to_string(), f64::from(u8::from(self.dual)));
        s.insert("pip".to_string(), f64::from(u8::from(self.pip)));
        s.insert("source".to_string(), self.source as f64);
        s
    }

    /// Micro-reboot restore: rebuilds the manager from a checkpoint.
    pub fn restore(&mut self, s: &std::collections::BTreeMap<String, f64>) {
        let d = ScreenManager::default();
        self.menu_open = s.get("menu_open").map_or(d.menu_open, |v| *v != 0.0);
        self.epg_open = s.get("epg_open").map_or(d.epg_open, |v| *v != 0.0);
        self.dual = s.get("dual").map_or(d.dual, |v| *v != 0.0);
        self.pip = s.get("pip").map_or(d.pip, |v| *v != 0.0);
        self.source = s
            .get("source")
            .map_or(d.source, |v| (*v as i64).rem_euclid(4));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::SyntheticCodeBank;
    use crate::faults::FaultSet;
    use observe::BlockCoverage;
    use simkit::SimTime;

    fn run(
        s: &mut ScreenManager,
        faults: &FaultSet,
        f: impl FnOnce(&mut ScreenManager, &mut FeatureCtx<'_>),
    ) {
        let mut cov = BlockCoverage::new(crate::blocks::N_BLOCKS);
        let bank = SyntheticCodeBank::default();
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now: SimTime::ZERO,
            cov: &mut cov,
            bank: &bank,
            faults,
            obs: &mut obs,
        };
        f(s, &mut ctx);
    }

    #[test]
    fn suppression_lattice() {
        let s = ScreenManager::new();
        assert_eq!(s.mode(false), "video");
        assert_eq!(s.mode(true), "teletext");
        let mut s = ScreenManager::new();
        let faults = FaultSet::none();
        run(&mut s, &faults, |s, c| s.dual_toggle(c, false));
        assert_eq!(s.mode(false), "dual");
        assert_eq!(s.mode(true), "dual+teletext");
        run(&mut s, &faults, |s, c| s.menu(c, false));
        assert_eq!(s.mode(true), "menu"); // menu suppresses everything
    }

    #[test]
    fn menu_closes_epg() {
        let faults = FaultSet::none();
        let mut s = ScreenManager::new();
        run(&mut s, &faults, |s, c| s.epg(c, false));
        assert!(s.epg_open());
        run(&mut s, &faults, |s, c| s.menu(c, false));
        assert!(s.menu_open());
        assert!(!s.epg_open());
    }

    #[test]
    fn dual_and_pip_exclusive() {
        let faults = FaultSet::none();
        let mut s = ScreenManager::new();
        run(&mut s, &faults, |s, c| s.pip_toggle(c, false));
        assert!(s.pip());
        run(&mut s, &faults, |s, c| s.dual_toggle(c, false));
        assert!(s.dual() && !s.pip());
        run(&mut s, &faults, |s, c| s.pip_toggle(c, false));
        assert!(s.pip() && !s.dual());
    }

    #[test]
    fn back_consumes_osd_first() {
        let faults = FaultSet::none();
        let mut s = ScreenManager::new();
        run(&mut s, &faults, |s, c| s.menu(c, true));
        let mut consumed = false;
        run(&mut s, &faults, |s, c| consumed = s.back(c, true));
        assert!(consumed);
        assert!(!s.menu_open());
        run(&mut s, &faults, |s, c| consumed = s.back(c, true));
        assert!(!consumed, "no OSD open: back falls through");
    }

    #[test]
    fn menu_freeze_fault() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::MenuFreeze);
        let mut s = ScreenManager::new();
        run(&mut s, &faults, |s, c| s.menu(c, false));
        run(&mut s, &faults, |s, c| {
            s.back(c, false);
        });
        assert!(s.menu_open(), "menu must stay frozen under the fault");
    }

    #[test]
    fn epg_ignored_while_menu_open() {
        let faults = FaultSet::none();
        let mut s = ScreenManager::new();
        run(&mut s, &faults, |s, c| s.menu(c, false));
        run(&mut s, &faults, |s, c| s.epg(c, false));
        assert!(!s.epg_open());
    }

    #[test]
    fn source_cycles() {
        let faults = FaultSet::none();
        let mut s = ScreenManager::new();
        for expect in [1, 2, 3, 0, 1] {
            run(&mut s, &faults, |s, c| s.source_cycle(c));
            assert_eq!(s.source(), expect);
        }
    }
}
