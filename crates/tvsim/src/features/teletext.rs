//! Teletext: acquisition, page navigation, rendering.
//!
//! The feature at the heart of two paper experiments: the
//! loss-of-synchronization defect caught by mode-consistency checking
//! (Sect. 4.3) and the injected render fault localized by spectrum-based
//! diagnosis (Sect. 4.4).

use super::FeatureCtx;
use crate::blocks::{BlockMap, FirmwareOp};
use crate::faults::TvFault;
use serde::{Deserialize, Serialize};

/// The teletext feature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Teletext {
    ui_on: bool,
    page: i64,
    /// Digit-entry buffer for 3-digit page numbers.
    entry: Vec<u8>,
    /// The decoder component's mode — must track `ui_on`, unless the
    /// sync-loss fault is active.
    decoder_in_teletext: bool,
}

impl Default for Teletext {
    fn default() -> Self {
        Teletext {
            ui_on: false,
            page: 100,
            entry: Vec::new(),
            decoder_in_teletext: false,
        }
    }
}

impl Teletext {
    /// Creates the feature, off, at page 100.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while the teletext UI is on.
    pub fn is_on(&self) -> bool {
        self.ui_on
    }

    /// The current page number (100–899).
    pub fn page(&self) -> i64 {
        self.page
    }

    /// The decoder component's current mode string.
    pub fn decoder_mode(&self) -> &'static str {
        if self.decoder_in_teletext {
            "teletext"
        } else {
            "video"
        }
    }

    /// The UI component's current mode string.
    pub fn ui_mode(&self) -> &'static str {
        if self.ui_on {
            "teletext"
        } else {
            "video"
        }
    }

    /// Renders the current page: the displayed page number output.
    ///
    /// Under [`TvFault::TeletextRenderFault`] the faulty block — which
    /// lives in the render path's conditional sub-region for variant bit
    /// [`SyntheticCodeBank::FAULT_BIT`](crate::SyntheticCodeBank::FAULT_BIT)
    /// — corrupts the rendered page. The fault is data-dependent: it only
    /// strikes when the page number exercises the faulty branch, exactly
    /// like a real programming mistake in one basic block.
    fn render(&self, ctx: &mut FeatureCtx<'_>) {
        ctx.exec(FirmwareOp::TeletextRender, self.page as u32);
        if !self.decoder_in_teletext {
            // Loss of sync: the decoder delivers no teletext data — the
            // user sees an empty page (the paper's teletext failure).
            ctx.output("teletext.page", 0i64);
            return;
        }
        let faulty_branch_taken =
            self.page as u32 & (1 << crate::blocks::SyntheticCodeBank::FAULT_BIT) != 0;
        let displayed = if ctx.faults.is_active(TvFault::TeletextRenderFault) && faulty_branch_taken
        {
            // The faulty block mangles the page register before display.
            ctx.hit(BlockMap::TELETEXT + 9);
            self.page + 7
        } else {
            self.page
        };
        ctx.output("teletext.page", displayed);
    }

    /// Emits the current displayed-page output (0 when off).
    fn emit_off(&self, ctx: &mut FeatureCtx<'_>) {
        ctx.output("teletext.page", 0i64);
    }

    /// Emits the two components' modes in dependency order: entering
    /// teletext brings the decoder up first; leaving tears the UI down
    /// first. This keeps the externally observable mode sequence free of
    /// transient inconsistencies when the system is healthy.
    fn emit_modes(&self, ctx: &mut FeatureCtx<'_>) {
        if self.ui_on {
            ctx.mode("decoder", self.decoder_mode());
            ctx.mode("ui", self.ui_mode());
        } else {
            ctx.mode("ui", self.ui_mode());
            ctx.mode("decoder", self.decoder_mode());
        }
    }

    /// Handles the teletext toggle key. Returns true if the toggle was
    /// accepted (the screen manager may have suppressed it).
    pub fn toggle(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::TELETEXT);
        if self.ui_on {
            ctx.hit(BlockMap::TELETEXT + 1);
            self.ui_on = false;
            self.decoder_in_teletext = false;
            self.entry.clear();
            ctx.exec(FirmwareOp::Compose, 0);
            self.emit_off(ctx);
        } else {
            ctx.hit(BlockMap::TELETEXT + 2);
            self.ui_on = true;
            self.page = 100;
            self.entry.clear();
            ctx.exec(FirmwareOp::TeletextAcquire, self.page as u32);
            if ctx.faults.is_active(TvFault::TeletextSyncLoss) {
                // Fault: the decoder misses the mode-change notification.
                ctx.hit(BlockMap::TELETEXT + 3);
            } else {
                ctx.hit(BlockMap::TELETEXT + 4);
                self.decoder_in_teletext = true;
            }
            self.render(ctx);
        }
        self.emit_modes(ctx);
    }

    /// Handles a digit key while teletext is visible (page entry).
    pub fn digit(&mut self, ctx: &mut FeatureCtx<'_>, d: u8) {
        ctx.hit(BlockMap::TELETEXT + 5);
        self.entry.push(d);
        if self.entry.len() == 3 {
            let n = self.entry[0] as i64 * 100 + self.entry[1] as i64 * 10 + self.entry[2] as i64;
            self.entry.clear();
            // Valid teletext pages are 100–899.
            if (100..=899).contains(&n) {
                ctx.hit(BlockMap::TELETEXT + 6);
                self.page = n;
                ctx.exec(FirmwareOp::TeletextAcquire, self.page as u32);
                self.render(ctx);
            } else {
                ctx.hit(BlockMap::TELETEXT + 7);
                // Invalid page: entry discarded, page unchanged, re-render.
                self.render(ctx);
            }
        }
    }

    /// Channel changed while teletext on: re-acquire and re-render.
    pub fn on_channel_change(&mut self, ctx: &mut FeatureCtx<'_>) {
        if self.ui_on {
            ctx.hit(BlockMap::TELETEXT + 8);
            self.page = 100;
            self.entry.clear();
            ctx.exec(FirmwareOp::TeletextAcquire, self.page as u32);
            self.render(ctx);
        }
    }

    /// Run-time recovery: re-synchronizes the decoder to the UI state
    /// (the corrective action for the loss-of-sync error, applied by the
    /// recovery side of the awareness loop).
    pub fn resync(&mut self, ctx: &mut FeatureCtx<'_>) {
        self.decoder_in_teletext = self.ui_on;
        if self.ui_on {
            ctx.exec(FirmwareOp::TeletextAcquire, self.page as u32);
            self.render(ctx);
        }
        self.emit_modes(ctx);
    }

    /// Re-emits the current displayed page without touching state — the
    /// announce step after a micro-reboot restore.
    pub fn announce(&self, ctx: &mut FeatureCtx<'_>) {
        if self.ui_on {
            self.render(ctx);
        } else {
            self.emit_off(ctx);
        }
    }

    /// Micro-reboot checkpoint: UI/decoder modes, page, and the partial
    /// digit-entry buffer.
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, f64> {
        let mut s = std::collections::BTreeMap::new();
        s.insert("ui_on".to_string(), f64::from(u8::from(self.ui_on)));
        s.insert("page".to_string(), self.page as f64);
        s.insert(
            "decoder_in_teletext".to_string(),
            f64::from(u8::from(self.decoder_in_teletext)),
        );
        s.insert("entry.len".to_string(), self.entry.len() as f64);
        for (i, d) in self.entry.iter().enumerate() {
            s.insert(format!("entry.{i}"), f64::from(*d));
        }
        s
    }

    /// Micro-reboot restore: rebuilds the feature from a checkpoint.
    pub fn restore(&mut self, s: &std::collections::BTreeMap<String, f64>) {
        let d = Teletext::default();
        self.ui_on = s.get("ui_on").map_or(d.ui_on, |v| *v != 0.0);
        self.page = s
            .get("page")
            .map_or(d.page, |v| (*v as i64).clamp(100, 899));
        self.decoder_in_teletext = s
            .get("decoder_in_teletext")
            .map_or(d.decoder_in_teletext, |v| *v != 0.0);
        let len = s.get("entry.len").map_or(0, |v| (*v as usize).min(2));
        self.entry = (0..len)
            .filter_map(|i| s.get(&format!("entry.{i}")).map(|v| *v as u8))
            .collect();
    }

    /// Forces teletext off (power-off, back key).
    pub fn force_off(&mut self, ctx: &mut FeatureCtx<'_>) {
        if self.ui_on {
            self.ui_on = false;
            self.decoder_in_teletext = false;
            self.entry.clear();
            self.emit_off(ctx);
            self.emit_modes(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::SyntheticCodeBank;
    use crate::faults::FaultSet;
    use observe::BlockCoverage;
    use simkit::SimTime;

    fn run(
        t: &mut Teletext,
        faults: &FaultSet,
        f: impl FnOnce(&mut Teletext, &mut FeatureCtx<'_>),
    ) -> Vec<observe::Observation> {
        let mut cov = BlockCoverage::new(crate::blocks::N_BLOCKS);
        let bank = SyntheticCodeBank::default();
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now: SimTime::ZERO,
            cov: &mut cov,
            bank: &bank,
            faults,
            obs: &mut obs,
        };
        f(t, &mut ctx);
        obs
    }

    fn output_value(obs: &[observe::Observation], name: &str) -> Option<f64> {
        obs.iter()
            .filter_map(|o| o.as_output())
            .filter(|(n, _)| *n == name)
            .filter_map(|(_, v)| v.as_num())
            .next_back()
    }

    #[test]
    fn toggle_on_shows_page_100() {
        let faults = FaultSet::none();
        let mut t = Teletext::new();
        let obs = run(&mut t, &faults, |t, c| t.toggle(c));
        assert!(t.is_on());
        assert_eq!(output_value(&obs, "teletext.page"), Some(100.0));
        assert_eq!(t.decoder_mode(), "teletext");
        assert_eq!(t.ui_mode(), "teletext");
    }

    #[test]
    fn three_digit_page_entry() {
        let faults = FaultSet::none();
        let mut t = Teletext::new();
        run(&mut t, &faults, |t, c| t.toggle(c));
        run(&mut t, &faults, |t, c| t.digit(c, 2));
        run(&mut t, &faults, |t, c| t.digit(c, 3));
        assert_eq!(t.page(), 100); // entry incomplete
        let obs = run(&mut t, &faults, |t, c| t.digit(c, 4));
        assert_eq!(t.page(), 234);
        assert_eq!(output_value(&obs, "teletext.page"), Some(234.0));
    }

    #[test]
    fn invalid_page_discarded() {
        let faults = FaultSet::none();
        let mut t = Teletext::new();
        run(&mut t, &faults, |t, c| t.toggle(c));
        for d in [0, 5, 0] {
            run(&mut t, &faults, |t, c| t.digit(c, d));
        }
        assert_eq!(t.page(), 100);
    }

    #[test]
    fn sync_loss_fault_desynchronizes_decoder() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::TeletextSyncLoss);
        let mut t = Teletext::new();
        run(&mut t, &faults, |t, c| t.toggle(c));
        assert!(t.is_on());
        assert_eq!(t.ui_mode(), "teletext");
        assert_eq!(t.decoder_mode(), "video"); // out of sync!
    }

    #[test]
    fn render_fault_is_data_dependent() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::TeletextRenderFault);
        let mut t = Teletext::new();
        // Page 100 does not exercise the faulty branch (bit 3 clear).
        let obs = run(&mut t, &faults, |t, c| t.toggle(c));
        assert_eq!(output_value(&obs, "teletext.page"), Some(100.0));
        // Page 123 has bit 3 set: corrupted to 130.
        for d in [1, 2] {
            run(&mut t, &faults, |t, c| t.digit(c, d));
        }
        let obs = run(&mut t, &faults, |t, c| t.digit(c, 3));
        assert_eq!(output_value(&obs, "teletext.page"), Some(130.0));
        // Internal page state stays correct — only the render corrupts.
        assert_eq!(t.page(), 123);
    }

    #[test]
    fn channel_change_reacquires() {
        let faults = FaultSet::none();
        let mut t = Teletext::new();
        run(&mut t, &faults, |t, c| t.toggle(c));
        for d in [2, 3, 4] {
            run(&mut t, &faults, |t, c| t.digit(c, d));
        }
        let obs = run(&mut t, &faults, |t, c| t.on_channel_change(c));
        assert_eq!(t.page(), 100);
        assert_eq!(output_value(&obs, "teletext.page"), Some(100.0));
    }

    #[test]
    fn force_off_resets() {
        let faults = FaultSet::none();
        let mut t = Teletext::new();
        run(&mut t, &faults, |t, c| t.toggle(c));
        let obs = run(&mut t, &faults, |t, c| t.force_off(c));
        assert!(!t.is_on());
        assert_eq!(output_value(&obs, "teletext.page"), Some(0.0));
        assert_eq!(t.decoder_mode(), "video");
    }
}
