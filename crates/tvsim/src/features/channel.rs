//! Channel tuning.

use super::FeatureCtx;
use crate::blocks::{BlockMap, FirmwareOp};
use crate::faults::TvFault;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Highest channel number.
pub const MAX_CHANNEL: i64 = 99;

/// The tuner: current channel plus child-lock filtering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelTuner {
    current: i64,
    previous: i64,
    locked: BTreeSet<i64>,
}

impl Default for ChannelTuner {
    fn default() -> Self {
        ChannelTuner {
            current: 1,
            previous: 1,
            locked: BTreeSet::new(),
        }
    }
}

impl ChannelTuner {
    /// Creates the tuner on channel 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tuned channel (1–99).
    pub fn current(&self) -> i64 {
        self.current
    }

    /// The previously tuned channel.
    pub fn previous(&self) -> i64 {
        self.previous
    }

    /// Marks a channel as child-locked.
    pub fn lock_channel(&mut self, ch: i64) {
        self.locked.insert(ch);
    }

    /// Unmarks a child-locked channel.
    pub fn unlock_channel(&mut self, ch: i64) {
        self.locked.remove(&ch);
    }

    /// True if `ch` is child-locked.
    pub fn is_locked(&self, ch: i64) -> bool {
        self.locked.contains(&ch)
    }

    fn retune(&mut self, ctx: &mut FeatureCtx<'_>, target: i64) {
        let target = target.clamp(1, MAX_CHANNEL);
        if self.locked.contains(&target) {
            // Child lock: the tune request is rejected (paper feature set).
            ctx.hit(BlockMap::CHILDLOCK + 1);
        } else {
            ctx.hit(BlockMap::CHANNEL + 1);
            self.previous = self.current;
            self.current = target;
        }
        ctx.exec(FirmwareOp::Tune, self.current as u32);
        ctx.output("channel", self.current);
    }

    /// Handles channel-up.
    pub fn channel_up(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::CHANNEL);
        let step = if ctx.faults.is_active(TvFault::ChannelSkip) {
            ctx.hit(BlockMap::CHANNEL + 2);
            2 // fault: off-by-one in the tuner table walk
        } else {
            1
        };
        let target = (self.current - 1 + step).rem_euclid(MAX_CHANNEL) + 1;
        self.retune(ctx, target);
    }

    /// Handles channel-down.
    pub fn channel_down(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::CHANNEL + 3);
        let target = (self.current - 2).rem_euclid(MAX_CHANNEL) + 1;
        self.retune(ctx, target);
    }

    /// Handles a digit key used for direct tuning.
    pub fn digit(&mut self, ctx: &mut FeatureCtx<'_>, d: u8) {
        ctx.hit(BlockMap::CHANNEL + 4);
        let target = if d == 0 { 10 } else { d as i64 };
        self.retune(ctx, target);
    }

    /// Micro-reboot checkpoint: channel state plus the child-lock set
    /// (one `locked.N` key per locked channel).
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, f64> {
        let mut s = std::collections::BTreeMap::new();
        s.insert("current".to_string(), self.current as f64);
        s.insert("previous".to_string(), self.previous as f64);
        for ch in &self.locked {
            s.insert(format!("locked.{ch}"), 1.0);
        }
        s
    }

    /// Micro-reboot restore: rebuilds the tuner from a checkpoint.
    pub fn restore(&mut self, s: &std::collections::BTreeMap<String, f64>) {
        let d = ChannelTuner::default();
        self.current = s
            .get("current")
            .map_or(d.current, |v| (*v as i64).clamp(1, MAX_CHANNEL));
        self.previous = s
            .get("previous")
            .map_or(d.previous, |v| (*v as i64).clamp(1, MAX_CHANNEL));
        self.locked = s
            .iter()
            .filter(|(_, v)| **v != 0.0)
            .filter_map(|(k, _)| k.strip_prefix("locked.").and_then(|n| n.parse().ok()))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::SyntheticCodeBank;
    use crate::faults::FaultSet;
    use observe::BlockCoverage;
    use simkit::SimTime;

    fn run(
        t: &mut ChannelTuner,
        faults: &FaultSet,
        f: impl FnOnce(&mut ChannelTuner, &mut FeatureCtx<'_>),
    ) -> Vec<observe::Observation> {
        let mut cov = BlockCoverage::new(crate::blocks::N_BLOCKS);
        let bank = SyntheticCodeBank::default();
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now: SimTime::ZERO,
            cov: &mut cov,
            bank: &bank,
            faults,
            obs: &mut obs,
        };
        f(t, &mut ctx);
        obs
    }

    #[test]
    fn up_down_wraps() {
        let faults = FaultSet::none();
        let mut t = ChannelTuner::new();
        run(&mut t, &faults, |t, c| t.channel_up(c));
        assert_eq!(t.current(), 2);
        run(&mut t, &faults, |t, c| t.channel_down(c));
        run(&mut t, &faults, |t, c| t.channel_down(c));
        assert_eq!(t.current(), MAX_CHANNEL);
        run(&mut t, &faults, |t, c| t.channel_up(c));
        assert_eq!(t.current(), 1);
        assert_eq!(t.previous(), MAX_CHANNEL);
    }

    #[test]
    fn digit_tunes_directly() {
        let faults = FaultSet::none();
        let mut t = ChannelTuner::new();
        let obs = run(&mut t, &faults, |t, c| t.digit(c, 7));
        assert_eq!(t.current(), 7);
        let (name, v) = obs[0].as_output().unwrap();
        assert_eq!(name, "channel");
        assert_eq!(v.as_num(), Some(7.0));
        run(&mut t, &faults, |t, c| t.digit(c, 0));
        assert_eq!(t.current(), 10);
    }

    #[test]
    fn channel_skip_fault() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::ChannelSkip);
        let mut t = ChannelTuner::new();
        run(&mut t, &faults, |t, c| t.channel_up(c));
        assert_eq!(t.current(), 3); // skipped channel 2
    }

    #[test]
    fn child_lock_blocks_tuning() {
        let faults = FaultSet::none();
        let mut t = ChannelTuner::new();
        t.lock_channel(5);
        assert!(t.is_locked(5));
        let obs = run(&mut t, &faults, |t, c| t.digit(c, 5));
        assert_eq!(t.current(), 1, "locked channel must be rejected");
        // The channel output still reports the (unchanged) channel.
        assert_eq!(obs[0].as_output().unwrap().1.as_num(), Some(1.0));
        t.unlock_channel(5);
        run(&mut t, &faults, |t, c| t.digit(c, 5));
        assert_eq!(t.current(), 5);
    }
}
