//! The TV's feature logic, one module per feature cluster.
//!
//! Every feature method is *instrumented*: it records the basic blocks it
//! executes into the system's [`observe::BlockCoverage`] through the
//! [`FeatureCtx`], the way AspectKoala instrumented the real Koala
//! components (paper Sect. 4.1). Feature interactions — "relations between
//! dual screen, teletext and various types of on-screen displays that
//! remove or suppress each other" (Sect. 4.2) — live in
//! [`screen::ScreenManager`].

pub mod channel;
pub mod extras;
pub mod screen;
pub mod teletext;
pub mod volume;

use crate::blocks::{FirmwareOp, SyntheticCodeBank};
use crate::faults::FaultSet;
use observe::{BlockCoverage, ObsValue, Observation, ObservationKind};
use simkit::SimTime;

/// Shared execution context passed to feature handlers.
#[derive(Debug)]
pub struct FeatureCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Coverage recorder (block instrumentation target).
    pub cov: &'a mut BlockCoverage,
    /// The synthetic firmware bank.
    pub bank: &'a SyntheticCodeBank,
    /// Currently active faults.
    pub faults: &'a FaultSet,
    /// Observation sink.
    pub obs: &'a mut Vec<Observation>,
}

impl FeatureCtx<'_> {
    /// Records execution of a hand-written block.
    pub fn hit(&mut self, block: u32) {
        self.cov.hit(block);
    }

    /// Executes a synthetic firmware operation.
    pub fn exec(&mut self, op: FirmwareOp, variant: u32) {
        self.bank.execute(self.cov, op, variant);
    }

    /// Emits an output observation.
    pub fn output(&mut self, name: &str, value: impl Into<ObsValue>) {
        self.obs.push(Observation::new(
            self.now,
            "tv",
            ObservationKind::Output {
                name: name.to_owned(),
                value: value.into(),
            },
        ));
    }

    /// Emits a component-mode observation.
    pub fn mode(&mut self, component: &str, mode: &str) {
        self.obs.push(Observation::new(
            self.now,
            component,
            ObservationKind::Mode {
                component: component.to_owned(),
                mode: mode.to_owned(),
            },
        ));
    }
}
