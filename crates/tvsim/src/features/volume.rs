//! Volume and mute.

use super::FeatureCtx;
use crate::blocks::{BlockMap, FirmwareOp};
use crate::faults::TvFault;
use serde::{Deserialize, Serialize};

/// Volume step per key press.
pub const VOLUME_STEP: i64 = 5;

/// The audio volume/mute feature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Volume {
    level: i64,
    muted: bool,
}

impl Default for Volume {
    fn default() -> Self {
        Volume {
            level: 20,
            muted: false,
        }
    }
}

impl Volume {
    /// Creates the feature at its factory defaults (level 20, unmuted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current level (0–100), ignoring mute.
    pub fn level(&self) -> i64 {
        self.level
    }

    /// True while muted.
    pub fn is_muted(&self) -> bool {
        self.muted
    }

    /// The audible volume (0 while muted).
    pub fn audible(&self) -> i64 {
        if self.muted {
            0
        } else {
            self.level
        }
    }

    /// Handles a volume-up key.
    pub fn vol_up(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::VOLUME);
        if ctx.faults.is_active(TvFault::StuckVolume) {
            // Fault: the command is parsed but the level update is lost.
            ctx.hit(BlockMap::VOLUME + 1);
        } else {
            ctx.hit(BlockMap::VOLUME + 2);
            self.level = (self.level + VOLUME_STEP).min(100);
        }
        ctx.exec(FirmwareOp::Audio, self.level as u32);
        self.emit(ctx);
    }

    /// Handles a volume-down key.
    pub fn vol_down(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::VOLUME + 3);
        self.level = (self.level - VOLUME_STEP).max(0);
        ctx.exec(FirmwareOp::Audio, self.level as u32);
        self.emit(ctx);
    }

    /// Handles the mute toggle.
    pub fn mute(&mut self, ctx: &mut FeatureCtx<'_>) {
        ctx.hit(BlockMap::VOLUME + 4);
        if self.muted {
            if ctx.faults.is_active(TvFault::MuteInversion) {
                // Fault: the unmute command is acknowledged but the audio
                // path stays closed.
                ctx.hit(BlockMap::VOLUME + 5);
            } else {
                ctx.hit(BlockMap::VOLUME + 6);
                self.muted = false;
            }
        } else {
            ctx.hit(BlockMap::VOLUME + 7);
            self.muted = true;
        }
        ctx.exec(FirmwareOp::Audio, self.muted as u32);
        self.emit(ctx);
    }

    /// Run-time recovery: forces the audio path into the given mute
    /// state, bypassing the (possibly faulty) toggle logic.
    pub fn force_mute_state(&mut self, ctx: &mut FeatureCtx<'_>, muted: bool) {
        self.muted = muted;
        ctx.exec(FirmwareOp::Audio, 100 + muted as u32);
        self.emit(ctx);
    }

    fn emit(&self, ctx: &mut FeatureCtx<'_>) {
        ctx.output("volume", self.audible());
        ctx.output("audio.muted", self.muted as i64);
    }

    /// Micro-reboot checkpoint: the complete feature state as key/value
    /// pairs.
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, f64> {
        let mut s = std::collections::BTreeMap::new();
        s.insert("level".to_string(), self.level as f64);
        s.insert("muted".to_string(), f64::from(u8::from(self.muted)));
        s
    }

    /// Micro-reboot restore: rebuilds the feature from a checkpoint
    /// (missing keys fall back to factory defaults).
    pub fn restore(&mut self, s: &std::collections::BTreeMap<String, f64>) {
        let d = Volume::default();
        self.level = (s.get("level").map_or(d.level, |v| *v as i64)).clamp(0, 100);
        self.muted = s.get("muted").map_or(d.muted, |v| *v != 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::SyntheticCodeBank;
    use crate::faults::FaultSet;
    use observe::BlockCoverage;
    use simkit::SimTime;

    fn ctx_parts() -> (BlockCoverage, SyntheticCodeBank, FaultSet) {
        (
            BlockCoverage::new(crate::blocks::N_BLOCKS),
            SyntheticCodeBank::default(),
            FaultSet::none(),
        )
    }

    fn run(
        v: &mut Volume,
        faults: &FaultSet,
        f: impl FnOnce(&mut Volume, &mut FeatureCtx<'_>),
    ) -> Vec<observe::Observation> {
        let mut cov = BlockCoverage::new(crate::blocks::N_BLOCKS);
        let bank = SyntheticCodeBank::default();
        let mut obs = Vec::new();
        let mut ctx = FeatureCtx {
            now: SimTime::ZERO,
            cov: &mut cov,
            bank: &bank,
            faults,
            obs: &mut obs,
        };
        f(v, &mut ctx);
        obs
    }

    #[test]
    fn volume_steps_and_clamps() {
        let (_c, _b, faults) = ctx_parts();
        let mut v = Volume::new();
        run(&mut v, &faults, |v, c| v.vol_up(c));
        assert_eq!(v.level(), 25);
        for _ in 0..40 {
            run(&mut v, &faults, |v, c| v.vol_up(c));
        }
        assert_eq!(v.level(), 100);
        for _ in 0..40 {
            run(&mut v, &faults, |v, c| v.vol_down(c));
        }
        assert_eq!(v.level(), 0);
    }

    #[test]
    fn mute_silences_output() {
        let (_c, _b, faults) = ctx_parts();
        let mut v = Volume::new();
        let obs = run(&mut v, &faults, |v, c| v.mute(c));
        assert!(v.is_muted());
        assert_eq!(v.audible(), 0);
        let (name, val) = obs[0].as_output().unwrap();
        assert_eq!(name, "volume");
        assert_eq!(val.as_num(), Some(0.0));
        run(&mut v, &faults, |v, c| v.mute(c));
        assert!(!v.is_muted());
        assert_eq!(v.audible(), 20);
    }

    #[test]
    fn stuck_volume_fault() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::StuckVolume);
        let mut v = Volume::new();
        run(&mut v, &faults, |v, c| v.vol_up(c));
        assert_eq!(v.level(), 20); // unchanged
                                   // vol_down still works (the fault is in the up path).
        run(&mut v, &faults, |v, c| v.vol_down(c));
        assert_eq!(v.level(), 15);
    }

    #[test]
    fn mute_inversion_fault_blocks_unmute() {
        let mut faults = FaultSet::none();
        faults.inject(TvFault::MuteInversion);
        let mut v = Volume::new();
        run(&mut v, &faults, |v, c| v.mute(c));
        assert!(v.is_muted());
        run(&mut v, &faults, |v, c| v.mute(c));
        assert!(v.is_muted(), "unmute must fail under the fault");
    }
}
