//! # tvsim — a component-based television system under observation
//!
//! The Trader project's Carrying Industrial Partner (NXP) supplied case
//! studies from the TV domain: a high-end TV whose software grew from 1 KB
//! (1980) to over 20 MB, with features such as "picture-in-picture,
//! teletext, sleep timer, child lock, TV ratings, emergency alerts, TV
//! guide, and advanced image processing" and rich feature interactions
//! ("relations between dual screen, teletext and various types of
//! on-screen displays that remove or suppress each other", paper
//! Sect. 2/4.2). That software is proprietary; this crate is the
//! behavioural stand-in used by every TV-domain experiment:
//!
//! * [`TvSystem`] — the executable TV control software, instrumented with
//!   basic-block coverage ([`observe::BlockCoverage`]) like the real C code
//!   in the paper's diagnosis experiment;
//! * [`features`] — volume, channel tuning, teletext, screen/OSD
//!   management, child lock, sleep timer, swivel: each with the feature
//!   interactions the paper calls out;
//! * [`remote::Key`] — the remote control, the TV's input alphabet;
//! * [`koala`] — a Koala-style architectural description of the component
//!   assembly (provides/requires interfaces, bindings);
//! * [`blocks`] — the block-id map plus the [`SyntheticCodeBank`]
//!   representing the rest of the 20 MB firmware for the 60 000-block
//!   diagnosis experiment;
//! * [`faults`] — injectable TV faults (teletext sync loss, stuck volume,
//!   teletext render fault, …);
//! * [`model`] — the specification [`statemachine::Machine`] of desired
//!   behaviour that the awareness framework executes at run time;
//! * [`pipeline`] — the streaming pipeline mapped onto simulated SoC
//!   processors, for the overload / load-balancing experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod faults;
pub mod features;
pub mod koala;
pub mod model;
pub mod pipeline;
pub mod remote;
pub mod system;

pub use blocks::{BlockMap, SyntheticCodeBank, N_BLOCKS};
pub use faults::{FaultSet, TvFault};
pub use koala::{tv_assembly, Assembly, Binding, ComponentDecl};
pub use model::tv_spec_machine;
pub use pipeline::{PipelineConfig, PipelineReport, StreamingPipeline};
pub use remote::{Key, KeySequence};
pub use system::{TvSystem, UnitState};
