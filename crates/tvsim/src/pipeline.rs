//! The streaming pipeline on the simulated SoC.
//!
//! Models the real-time half of the TV: per-frame decode and image
//! enhancement jobs on the platform's processors. Bad input signals
//! inflate decode cost through error correction — the overload scenario of
//! paper Sect. 4.5, where IMEC's task migration "leads to improved image
//! quality in case of overload situations (e.g., due to intensive error
//! correction on a bad input signal)".

use serde::{Deserialize, Serialize};
use simkit::{Cpu, SimDuration, SimTime, TaskId};
use std::collections::BTreeMap;
use telemetry::Telemetry;

/// The decode task id.
pub const TASK_DECODE: TaskId = TaskId(0);
/// The image-enhancement task id.
pub const TASK_ENHANCE: TaskId = TaskId(1);
/// First id free for background/stress tasks.
pub const TASK_BACKGROUND_BASE: u32 = 100;

/// Pipeline timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Frame period (40 ms = 25 fps).
    pub frame_period: SimDuration,
    /// Decode cost per frame at perfect signal.
    pub decode_wcet: SimDuration,
    /// Enhancement cost per frame.
    pub enhance_wcet: SimDuration,
    /// Extra decode cost factor at worst signal: cost scales by
    /// `1 + factor * (1 - quality)`.
    pub error_correction_factor: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            frame_period: SimDuration::from_millis(40),
            decode_wcet: SimDuration::from_millis(14),
            enhance_wcet: SimDuration::from_millis(16),
            error_correction_factor: 1.6,
        }
    }
}

/// Per-run pipeline outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Frames processed.
    pub frames: u64,
    /// Frames with both decode and enhancement on time (full quality).
    pub full_quality: u64,
    /// Frames decoded on time but enhancement late (degraded).
    pub degraded: u64,
    /// Frames whose decode itself was late (visible artifacts).
    pub broken: u64,
    /// Mean frame quality in `[0, 1]`.
    pub mean_quality: f64,
    /// Utilization per processor.
    pub cpu_utilization: Vec<f64>,
    /// Deadline misses per processor.
    pub cpu_misses: Vec<u64>,
}

/// A background (stress) task on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct BackgroundTask {
    task: TaskId,
    cpu: usize,
    period: SimDuration,
    wcet: SimDuration,
    priority: u8,
}

/// The per-frame streaming pipeline over a set of processors.
///
/// ```
/// use tvsim::{StreamingPipeline, PipelineConfig};
///
/// let mut p = StreamingPipeline::new(2, PipelineConfig::default());
/// p.set_signal_quality(1.0);
/// let report = p.run_frames(100);
/// assert_eq!(report.full_quality, 100);
/// ```
#[derive(Debug)]
pub struct StreamingPipeline {
    cpus: Vec<Cpu>,
    config: PipelineConfig,
    /// Which processor runs decode / enhance.
    assignment: BTreeMap<TaskId, usize>,
    background: Vec<BackgroundTask>,
    signal_quality: f64,
    now: SimTime,
    last_frame_loads: Vec<f64>,
    frames_done: u64,
    quality_sum: f64,
    full: u64,
    degraded: u64,
    broken: u64,
    migrations: u64,
    telemetry: Telemetry,
}

impl StreamingPipeline {
    /// Creates a pipeline over `n_cpus` processors, with both tasks
    /// initially on processor 0 (the cost-constrained default mapping).
    ///
    /// # Panics
    ///
    /// Panics if `n_cpus` is zero.
    pub fn new(n_cpus: usize, config: PipelineConfig) -> Self {
        assert!(n_cpus > 0, "need at least one processor");
        let cpus = (0..n_cpus).map(|i| Cpu::new(format!("cpu{i}"))).collect();
        let mut assignment = BTreeMap::new();
        assignment.insert(TASK_DECODE, 0);
        assignment.insert(TASK_ENHANCE, 0);
        StreamingPipeline {
            cpus,
            config,
            assignment,
            background: Vec::new(),
            signal_quality: 1.0,
            now: SimTime::ZERO,
            last_frame_loads: vec![0.0; n_cpus],
            frames_done: 0,
            quality_sum: 0.0,
            full: 0,
            degraded: 0,
            broken: 0,
            migrations: 0,
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle. Frames and decode cost are recorded
    /// as metrics only (per-frame rate); broken frames and migrations are
    /// signal-level and also land in the flight recorder.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Sets the input signal quality (1.0 = perfect, 0.0 = worst).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn set_signal_quality(&mut self, q: f64) {
        assert!((0.0..=1.0).contains(&q), "quality must be in [0,1]");
        self.signal_quality = q;
    }

    /// Current signal quality.
    pub fn signal_quality(&self) -> f64 {
        self.signal_quality
    }

    /// The processor currently assigned to `task`.
    pub fn assignment_of(&self, task: TaskId) -> Option<usize> {
        self.assignment.get(&task).copied()
    }

    /// Migrates a pipeline task to another processor (the load-balancing
    /// recovery action). Pending jobs move with their remaining demand.
    ///
    /// # Panics
    ///
    /// Panics if `to_cpu` is out of range or the task is unknown.
    pub fn migrate_task(&mut self, task: TaskId, to_cpu: usize) {
        assert!(to_cpu < self.cpus.len(), "no such processor");
        let from = *self.assignment.get(&task).expect("unknown pipeline task");
        if from == to_cpu {
            return;
        }
        // Move queued jobs; bring both processors to a common time first.
        let now = self.now;
        self.cpus[from].advance_to(now);
        self.cpus[to_cpu].advance_to(now);
        let jobs = self.cpus[from].steal_task(task);
        for job in jobs {
            self.cpus[to_cpu].release(now, job.task, job.remaining, job.priority, job.deadline);
        }
        self.assignment.insert(task, to_cpu);
        self.migrations += 1;
        self.telemetry.count(now, "tvsim.pipeline.migrations", 1);
    }

    /// Task migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Adds a periodic background task (e.g. the CPU eater) to a
    /// processor. Returns its task id.
    pub fn add_background_task(
        &mut self,
        cpu: usize,
        period: SimDuration,
        wcet: SimDuration,
        priority: u8,
    ) -> TaskId {
        assert!(cpu < self.cpus.len(), "no such processor");
        let task = TaskId(TASK_BACKGROUND_BASE + self.background.len() as u32);
        self.background.push(BackgroundTask {
            task,
            cpu,
            period,
            wcet,
            priority,
        });
        task
    }

    /// Removes a background task (stress-test teardown).
    pub fn remove_background_task(&mut self, task: TaskId) -> bool {
        let before = self.background.len();
        self.background.retain(|b| b.task != task);
        self.background.len() != before
    }

    /// Current mean load per processor (utilization so far).
    pub fn cpu_loads(&self) -> Vec<f64> {
        self.cpus.iter().map(|c| c.stats().utilization()).collect()
    }

    /// Per-processor load during the most recent frame — the windowed
    /// signal a load balancer reacts to.
    pub fn last_frame_loads(&self) -> &[f64] {
        &self.last_frame_loads
    }

    /// The processors (read access for custom metrics).
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// Simulated time so far.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs `n` frame periods, returning the cumulative report.
    pub fn run_frames(&mut self, n: u64) -> PipelineReport {
        for _ in 0..n {
            self.run_one_frame();
        }
        self.report()
    }

    fn decode_cost(&self) -> SimDuration {
        let inflate = 1.0 + self.config.error_correction_factor * (1.0 - self.signal_quality);
        self.config.decode_wcet.mul_f64(inflate)
    }

    fn run_one_frame(&mut self) {
        let start = self.now;
        let deadline = start + self.config.frame_period;
        let busy_before: Vec<_> = self.cpus.iter().map(|c| c.stats().busy).collect();
        // Release pipeline jobs.
        let dec_cpu = self.assignment[&TASK_DECODE];
        let enh_cpu = self.assignment[&TASK_ENHANCE];
        let decode_cost = self.decode_cost();
        self.cpus[dec_cpu].release(start, TASK_DECODE, decode_cost, 1, deadline);
        self.cpus[enh_cpu].release(start, TASK_ENHANCE, self.config.enhance_wcet, 2, deadline);
        // Release background jobs due within this frame.
        for b in self.background.clone() {
            let mut t = SimTime::ZERO;
            // Align to the task's own period grid.
            let k = start.as_nanos().div_ceil(b.period.as_nanos().max(1));
            t += SimDuration::from_nanos(k * b.period.as_nanos());
            let mut release = SimTime::from_nanos(t.as_nanos());
            while release < deadline {
                if release >= start {
                    self.cpus[b.cpu].release(
                        release,
                        b.task,
                        b.wcet,
                        b.priority,
                        release + b.period,
                    );
                }
                release += b.period;
            }
        }
        // Run the frame window.
        let mut decode_ok = false;
        let mut enhance_ok = false;
        for cpu in &mut self.cpus {
            for done in cpu.advance_to(deadline) {
                if done.task == TASK_DECODE && done.deadline_met {
                    decode_ok = true;
                }
                if done.task == TASK_ENHANCE && done.deadline_met {
                    enhance_ok = true;
                }
            }
        }
        // Late jobs from previous frames may still be queued; drop stale
        // pipeline jobs so lateness does not cascade unboundedly (frame
        // skipping, as real pipelines do).
        for cpu in &mut self.cpus {
            let stale: Vec<_> = [TASK_DECODE, TASK_ENHANCE]
                .iter()
                .flat_map(|t| cpu.steal_task(*t))
                .collect();
            drop(stale);
        }
        let quality = match (decode_ok, enhance_ok) {
            (true, true) => {
                self.full += 1;
                1.0
            }
            (true, false) => {
                self.degraded += 1;
                self.telemetry.metric_incr("tvsim.pipeline.degraded", 1);
                0.6
            }
            (false, _) => {
                self.broken += 1;
                self.telemetry.count(deadline, "tvsim.pipeline.broken", 1);
                0.2
            }
        };
        self.quality_sum += quality;
        self.frames_done += 1;
        self.telemetry.metric_incr("tvsim.pipeline.frames", 1);
        self.telemetry
            .observe_ns("tvsim.pipeline.decode_cost_ns", decode_cost.as_nanos());
        self.last_frame_loads = self
            .cpus
            .iter()
            .zip(&busy_before)
            .map(|(c, before)| (c.stats().busy - *before).ratio(self.config.frame_period))
            .collect();
        self.now = deadline;
    }

    /// The cumulative report.
    pub fn report(&self) -> PipelineReport {
        PipelineReport {
            frames: self.frames_done,
            full_quality: self.full,
            degraded: self.degraded,
            broken: self.broken,
            mean_quality: if self.frames_done == 0 {
                0.0
            } else {
                self.quality_sum / self.frames_done as f64
            },
            cpu_utilization: self.cpu_loads(),
            cpu_misses: self
                .cpus
                .iter()
                .map(|c| c.stats().deadline_misses)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_signal_single_cpu_fits() {
        // 14 + 16 = 30ms of work per 40ms frame: fits on one CPU.
        let mut p = StreamingPipeline::new(1, PipelineConfig::default());
        let r = p.run_frames(50);
        assert_eq!(r.full_quality, 50);
        assert_eq!(r.broken, 0);
        assert!((r.mean_quality - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_signal_overloads_single_cpu() {
        let mut p = StreamingPipeline::new(1, PipelineConfig::default());
        p.set_signal_quality(0.2);
        // decode = 14 * (1 + 1.6*0.8) = 31.9ms; + 16ms enhance > 40ms.
        let r = p.run_frames(50);
        assert!(r.full_quality < 10, "full={}", r.full_quality);
        assert!(r.mean_quality < 0.9);
    }

    #[test]
    fn migration_restores_quality_under_bad_signal() {
        let mut p = StreamingPipeline::new(2, PipelineConfig::default());
        p.set_signal_quality(0.2);
        let before = p.run_frames(50);
        assert!(before.mean_quality < 0.9);
        // Recovery: move enhancement to the second processor.
        p.migrate_task(TASK_ENHANCE, 1);
        let frames_before = p.report().frames;
        let after_total = p.run_frames(50);
        // Quality of the second window alone:
        let after_full = after_total.full_quality - before.full_quality;
        assert!(
            after_full >= 45,
            "full-quality frames after migration: {after_full}"
        );
        assert_eq!(p.migrations(), 1);
        assert_eq!(after_total.frames, frames_before + 50);
    }

    #[test]
    fn background_eater_degrades_pipeline() {
        let mut p = StreamingPipeline::new(1, PipelineConfig::default());
        // CPU eater: 20ms every 40ms at high priority.
        let eater = p.add_background_task(
            0,
            SimDuration::from_millis(40),
            SimDuration::from_millis(20),
            0,
        );
        let r = p.run_frames(50);
        assert!(r.full_quality < 10, "full={}", r.full_quality);
        // Removing the eater restores service.
        assert!(p.remove_background_task(eater));
        let r2 = p.run_frames(50);
        assert_eq!(r2.full_quality - r.full_quality, 50);
    }

    #[test]
    fn migrate_to_same_cpu_is_noop() {
        let mut p = StreamingPipeline::new(2, PipelineConfig::default());
        p.migrate_task(TASK_DECODE, 0);
        assert_eq!(p.migrations(), 0);
        assert_eq!(p.assignment_of(TASK_DECODE), Some(0));
    }

    #[test]
    fn loads_reflect_assignment() {
        let mut p = StreamingPipeline::new(2, PipelineConfig::default());
        p.migrate_task(TASK_ENHANCE, 1);
        p.run_frames(20);
        let loads = p.cpu_loads();
        assert!(loads[0] > 0.2 && loads[1] > 0.2);
        assert!(loads[0] < 1.0 && loads[1] < 1.0);
    }

    #[test]
    #[should_panic(expected = "no such processor")]
    fn migrate_out_of_range_panics() {
        let mut p = StreamingPipeline::new(1, PipelineConfig::default());
        p.migrate_task(TASK_DECODE, 5);
    }
}
