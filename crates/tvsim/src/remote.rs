//! The remote control: the TV's input alphabet.

use serde::{Deserialize, Serialize};
use simkit::SimRng;
use std::fmt;

/// A remote-control key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Key {
    /// Power toggle (on/standby).
    Power,
    /// A digit key (0–9).
    Digit(u8),
    /// Volume up.
    VolUp,
    /// Volume down.
    VolDown,
    /// Mute toggle.
    Mute,
    /// Next channel.
    ChannelUp,
    /// Previous channel.
    ChannelDown,
    /// Teletext toggle.
    Teletext,
    /// Dual-screen toggle.
    DualScreen,
    /// Menu toggle.
    Menu,
    /// Confirm.
    Ok,
    /// Back / exit.
    Back,
    /// Electronic programme guide toggle.
    Epg,
    /// Picture-in-picture toggle.
    Pip,
    /// Input-source cycle.
    Source,
    /// Swivel the set left.
    SwivelLeft,
    /// Swivel the set right.
    SwivelRight,
    /// Arm/extend the sleep timer.
    Sleep,
}

impl Key {
    /// Every key, for scenario generation.
    pub const ALL: [Key; 18] = [
        Key::Power,
        Key::Digit(1),
        Key::VolUp,
        Key::VolDown,
        Key::Mute,
        Key::ChannelUp,
        Key::ChannelDown,
        Key::Teletext,
        Key::DualScreen,
        Key::Menu,
        Key::Ok,
        Key::Back,
        Key::Epg,
        Key::Pip,
        Key::Source,
        Key::SwivelLeft,
        Key::SwivelRight,
        Key::Sleep,
    ];

    /// The event name used in specification models and observations.
    pub fn event_name(self) -> &'static str {
        match self {
            Key::Power => "power",
            Key::Digit(_) => "digit",
            Key::VolUp => "vol_up",
            Key::VolDown => "vol_down",
            Key::Mute => "mute",
            Key::ChannelUp => "ch_up",
            Key::ChannelDown => "ch_down",
            Key::Teletext => "teletext",
            Key::DualScreen => "dual",
            Key::Menu => "menu",
            Key::Ok => "ok",
            Key::Back => "back",
            Key::Epg => "epg",
            Key::Pip => "pip",
            Key::Source => "source",
            Key::SwivelLeft => "swivel_left",
            Key::SwivelRight => "swivel_right",
            Key::Sleep => "sleep",
        }
    }

    /// The digit payload for digit keys.
    pub fn payload(self) -> Option<i64> {
        match self {
            Key::Digit(d) => Some(d as i64),
            _ => None,
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Digit(d) => write!(f, "digit({d})"),
            other => f.write_str(other.event_name()),
        }
    }
}

/// A sequence of key presses — a *scenario* in the paper's terminology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySequence {
    keys: Vec<Key>,
}

impl KeySequence {
    /// Creates a scenario from explicit keys.
    pub fn new(keys: Vec<Key>) -> Self {
        KeySequence { keys }
    }

    /// The keys, in press order.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Scenario length (number of key presses).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True for the empty scenario.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The paper's teletext scenario shape: power on, tune, browse a
    /// diverse set of teletext pages (123, 211, 100, 108, …), interleave
    /// volume and channel keys — `len` presses total.
    ///
    /// The page diversity matters for diagnosis: pages both with and
    /// without each page-number bit are visited, so spectra discriminate
    /// data-dependent branches from one another.
    pub fn teletext_scenario(len: usize) -> Self {
        let mut keys = vec![Key::Power, Key::Digit(1)];
        let pattern = [
            Key::Teletext, // on, page 100
            Key::Digit(1),
            Key::Digit(2),
            Key::Digit(3), // page 123
            Key::VolUp,
            Key::Digit(2),
            Key::Digit(1),
            Key::Digit(1),  // page 211
            Key::ChannelUp, // re-acquire page 100
            Key::Digit(1),
            Key::Digit(0),
            Key::Digit(8), // page 108
            Key::VolDown,
            Key::Mute,
            Key::Mute,
            Key::Teletext, // off
            Key::ChannelDown,
            Key::Ok,
        ];
        let mut i = 0;
        while keys.len() < len {
            keys.push(pattern[i % pattern.len()]);
            i += 1;
        }
        keys.truncate(len);
        KeySequence { keys }
    }

    /// The near-idle scenario: power on, tune channel 1, then leave the
    /// set alone (`Ok` presses that change nothing). The scorecard's
    /// low-exercise workload — most fault classes stay dormant because
    /// their function is never invoked, which is exactly the coverage
    /// gap the matrix is built to expose.
    pub fn idle_scenario(len: usize) -> Self {
        let mut keys = vec![Key::Power, Key::Digit(1)];
        while keys.len() < len {
            keys.push(Key::Ok);
        }
        keys.truncate(len);
        KeySequence { keys }
    }

    /// The zapping burst: power on, then rapid channel surfing. Tuner
    /// faults are hammered; everything else stays dormant.
    pub fn zapping_scenario(len: usize) -> Self {
        let mut keys = vec![Key::Power, Key::Digit(1)];
        let pattern = [
            Key::ChannelUp,
            Key::ChannelUp,
            Key::ChannelUp,
            Key::ChannelDown,
            Key::ChannelUp,
            Key::ChannelDown,
        ];
        let mut i = 0;
        while keys.len() < len {
            keys.push(pattern[i % pattern.len()]);
            i += 1;
        }
        keys.truncate(len);
        KeySequence { keys }
    }

    /// The full-mix session: every user-facing function the awareness
    /// loop observes gets exercised — volume, mute, channel, teletext
    /// paging, menu open/close, sleep timer, swivel. The scorecard's
    /// high-exercise workload: a fault class that stays undetected here
    /// is a genuine monitoring gap, not a dormant function.
    pub fn full_mix_scenario(len: usize) -> Self {
        let mut keys = vec![Key::Power, Key::Digit(1)];
        let pattern = [
            Key::VolUp,
            Key::ChannelUp,
            Key::Mute,
            Key::Mute,
            Key::Teletext, // on, page 100
            Key::Digit(1),
            Key::Digit(2),
            Key::Digit(3), // page 123
            Key::Teletext, // off
            Key::Menu,
            Key::Back,
            Key::Sleep,
            Key::SwivelLeft,
            Key::SwivelRight,
            Key::VolDown,
            Key::ChannelDown,
        ];
        let mut i = 0;
        while keys.len() < len {
            keys.push(pattern[i % pattern.len()]);
            i += 1;
        }
        keys.truncate(len);
        KeySequence { keys }
    }

    /// A random scenario of `len` keys (deterministic from `rng`).
    pub fn random(len: usize, rng: &mut SimRng) -> Self {
        let mut keys = Vec::with_capacity(len);
        for _ in 0..len {
            let k = *rng.pick(&Key::ALL).expect("ALL is non-empty");
            // Randomize digits fully.
            let k = match k {
                Key::Digit(_) => Key::Digit(rng.uniform_u64(0, 9) as u8),
                other => other,
            };
            keys.push(k);
        }
        KeySequence { keys }
    }
}

impl FromIterator<Key> for KeySequence {
    fn from_iter<I: IntoIterator<Item = Key>>(iter: I) -> Self {
        KeySequence {
            keys: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_names_are_stable() {
        assert_eq!(Key::Power.event_name(), "power");
        assert_eq!(Key::Digit(7).event_name(), "digit");
        assert_eq!(Key::Digit(7).payload(), Some(7));
        assert_eq!(Key::VolUp.payload(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Key::Digit(3).to_string(), "digit(3)");
        assert_eq!(Key::Teletext.to_string(), "teletext");
    }

    #[test]
    fn teletext_scenario_has_requested_length() {
        let s = KeySequence::teletext_scenario(27);
        assert_eq!(s.len(), 27);
        assert_eq!(s.keys()[0], Key::Power);
        assert!(s.keys().contains(&Key::Teletext));
    }

    #[test]
    fn scorecard_scenarios_have_requested_length_and_shape() {
        let idle = KeySequence::idle_scenario(40);
        assert_eq!(idle.len(), 40);
        assert!(idle.keys()[2..].iter().all(|k| *k == Key::Ok));

        let zap = KeySequence::zapping_scenario(40);
        assert_eq!(zap.len(), 40);
        assert!(zap.keys().contains(&Key::ChannelUp));
        assert!(!zap.keys().contains(&Key::VolUp));

        let mix = KeySequence::full_mix_scenario(40);
        assert_eq!(mix.len(), 40);
        for key in [
            Key::VolUp,
            Key::Mute,
            Key::Teletext,
            Key::ChannelUp,
            Key::Menu,
            Key::Sleep,
            Key::SwivelLeft,
        ] {
            assert!(mix.keys().contains(&key), "full mix misses {key}");
        }
        // Degenerate lengths stay well-formed.
        assert_eq!(KeySequence::idle_scenario(1).len(), 1);
        assert_eq!(KeySequence::full_mix_scenario(0).len(), 0);
    }

    #[test]
    fn random_scenario_is_deterministic() {
        let mut r1 = SimRng::seed(5);
        let mut r2 = SimRng::seed(5);
        assert_eq!(
            KeySequence::random(50, &mut r1),
            KeySequence::random(50, &mut r2)
        );
    }

    #[test]
    fn collect_from_iterator() {
        let s: KeySequence = [Key::Ok, Key::Back].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
