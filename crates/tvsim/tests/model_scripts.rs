//! Test scripts against the TV specification model — the paper's
//! model-quality workflow (Sect. 4.2): "we investigate the possibilities
//! of formal model-checking and test scripts to improve model quality."

use simkit::SimDuration;
use statemachine::{Event, TestScript};
use tvsim::tv_spec_machine;

#[test]
fn volume_session_script_passes() {
    let machine = tv_spec_machine();
    let outcome = TestScript::new("volume-session")
        .inject(Event::plain("power"))
        .expect_state("on")
        .expect_output("volume", 20)
        .inject(Event::plain("vol_up"))
        .expect_output("volume", 25)
        .inject(Event::plain("mute"))
        .expect_output("volume", 0)
        .expect_output("audio.muted", 1)
        .inject(Event::plain("mute"))
        .expect_output("volume", 25)
        .inject(Event::plain("power"))
        .expect_state("standby")
        .expect_output("screen.mode", "off")
        .run(&machine);
    assert!(outcome.passed(), "{:?}", outcome.failures);
}

#[test]
fn feature_interaction_script_passes() {
    // The interactions the paper warns about: dual screen, teletext and
    // OSDs "remove or suppress each other".
    let machine = tv_spec_machine();
    let outcome = TestScript::new("interactions")
        .inject(Event::plain("power"))
        .inject(Event::plain("dual"))
        .expect_output("screen.mode", "dual")
        .inject(Event::plain("teletext"))
        .expect_output("screen.mode", "dual+teletext")
        .expect_output("teletext.page", 100)
        .inject(Event::plain("menu"))
        .expect_output("screen.mode", "menu")
        // Digits are swallowed by the menu: channel unchanged.
        .inject(Event::with_payload("digit", 7))
        .expect_var("ch", 1)
        .inject(Event::plain("back"))
        .expect_output("screen.mode", "dual+teletext")
        // Teletext key ignored while EPG has focus.
        .inject(Event::plain("epg"))
        .expect_output("screen.mode", "epg")
        .inject(Event::plain("teletext"))
        .expect_var("txt", 1)
        .inject(Event::plain("back"))
        .inject(Event::plain("back"))
        .expect_output("teletext.page", 0)
        .expect_output("screen.mode", "dual")
        .run(&machine);
    assert!(outcome.passed(), "{:?}", outcome.failures);
}

#[test]
fn teletext_page_entry_script_passes() {
    let machine = tv_spec_machine();
    let outcome = TestScript::new("page-entry")
        .inject(Event::plain("power"))
        .inject(Event::plain("teletext"))
        .expect_output("teletext.page", 100)
        .inject(Event::with_payload("digit", 2))
        .inject(Event::with_payload("digit", 3))
        // Incomplete entry: page unchanged.
        .expect_output("teletext.page", 100)
        .inject(Event::with_payload("digit", 4))
        .expect_output("teletext.page", 234)
        // Invalid page 050 is discarded.
        .inject(Event::with_payload("digit", 0))
        .inject(Event::with_payload("digit", 5))
        .inject(Event::with_payload("digit", 0))
        .expect_output("teletext.page", 234)
        .inject(Event::plain("ch_up"))
        .expect_output("teletext.page", 100)
        .expect_output("channel", 2)
        .run(&machine);
    assert!(outcome.passed(), "{:?}", outcome.failures);
}

#[test]
fn a_wrong_expectation_is_reported_precisely() {
    // The other half of the workflow: a script that disagrees with the
    // model localizes the disagreement to a step.
    let machine = tv_spec_machine();
    let outcome = TestScript::new("wrong")
        .inject(Event::plain("power"))
        .advance(SimDuration::from_millis(5))
        .inject(Event::plain("vol_up"))
        .expect_output("volume", 999)
        .run(&machine);
    assert!(!outcome.passed());
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].step, 3);
    assert!(outcome.failures[0].message.contains("volume"));
}
