//! Property-based robustness tests of the TV SUO.

use proptest::prelude::*;
use simkit::SimTime;
use tvsim::{Key, TvFault, TvSystem};

fn arb_key() -> impl Strategy<Value = Key> {
    prop_oneof![
        Just(Key::Power),
        (0u8..10).prop_map(Key::Digit),
        Just(Key::VolUp),
        Just(Key::VolDown),
        Just(Key::Mute),
        Just(Key::ChannelUp),
        Just(Key::ChannelDown),
        Just(Key::Teletext),
        Just(Key::DualScreen),
        Just(Key::Menu),
        Just(Key::Ok),
        Just(Key::Back),
        Just(Key::Epg),
        Just(Key::Pip),
        Just(Key::Source),
        Just(Key::SwivelLeft),
        Just(Key::SwivelRight),
        Just(Key::Sleep),
    ]
}

fn arb_fault() -> impl Strategy<Value = TvFault> {
    prop::sample::select(TvFault::ALL.to_vec())
}

proptest! {
    /// The TV never panics and keeps its state invariants under arbitrary
    /// key sequences with arbitrary active faults.
    #[test]
    fn tv_state_invariants_hold_under_faults(
        faults in prop::collection::vec(arb_fault(), 0..4),
        keys in prop::collection::vec(arb_key(), 1..120)
    ) {
        let mut tv = TvSystem::new();
        for f in faults {
            tv.inject_fault(f);
        }
        for (i, key) in keys.iter().enumerate() {
            let at = SimTime::from_millis(50 * (i as u64 + 1));
            let obs = tv.press(at, *key);
            // Invariants, fault or no fault:
            prop_assert!((0..=100).contains(&tv.volume_level()));
            prop_assert!((1..=99).contains(&tv.channel()));
            if tv.teletext().is_on() {
                prop_assert!((100..=899).contains(&tv.teletext().page()));
            }
            prop_assert!(tv.swivel().angle().abs() <= 45);
            prop_assert!(tv.sleep_timer().minutes() <= 120);
            // No OSD focus while in standby.
            if !tv.is_on() {
                prop_assert_eq!(tv.screen_mode(), "off");
            }
            // Observations are stamped with the press time.
            for o in &obs {
                prop_assert_eq!(o.time, at);
            }
            let _ = tv.tick(at);
        }
    }

    /// Coverage accounting: every press marks at least one block, and
    /// snapshots never exceed the instrumented universe.
    #[test]
    fn coverage_bounds(keys in prop::collection::vec(arb_key(), 1..60)) {
        let mut tv = TvSystem::new();
        for (i, key) in keys.iter().enumerate() {
            let at = SimTime::from_millis(10 * (i as u64 + 1));
            tv.press(at, *key);
            let snap = tv.take_coverage();
            prop_assert!(snap.count() > 0, "a press must execute code");
            prop_assert!(snap.count() <= tv.n_blocks());
        }
    }

    /// Determinism: identical scenarios produce identical observations
    /// and identical coverage.
    #[test]
    fn tv_is_deterministic(keys in prop::collection::vec(arb_key(), 1..60)) {
        let run = || {
            let mut tv = TvSystem::new();
            let mut all = Vec::new();
            for (i, key) in keys.iter().enumerate() {
                let at = SimTime::from_millis(10 * (i as u64 + 1));
                all.extend(tv.press(at, *key));
            }
            (all, tv.take_coverage())
        };
        let (obs_a, cov_a) = run();
        let (obs_b, cov_b) = run();
        prop_assert_eq!(obs_a, obs_b);
        prop_assert_eq!(cov_a, cov_b);
    }
}
