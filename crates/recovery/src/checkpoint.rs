//! Checkpoints of recoverable-unit state.

use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// A unit's state snapshot: named scalar values (the lowest common
/// denominator the fault-tolerance library serializes).
pub type Snapshot = BTreeMap<String, f64>;

/// A bounded per-unit checkpoint history.
///
/// ```
/// use recovery::CheckpointStore;
/// use simkit::SimTime;
/// use std::collections::BTreeMap;
///
/// let mut store = CheckpointStore::new(2);
/// let mut snap = BTreeMap::new();
/// snap.insert("volume".to_owned(), 20.0);
/// store.save("audio", SimTime::ZERO, snap.clone());
/// assert_eq!(store.latest("audio"), Some(&snap));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckpointStore {
    capacity: usize,
    per_unit: BTreeMap<String, VecDeque<(SimTime, Snapshot)>>,
}

impl CheckpointStore {
    /// Creates a store keeping at most `capacity` checkpoints per unit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CheckpointStore {
            capacity,
            per_unit: BTreeMap::new(),
        }
    }

    /// Saves a checkpoint for `unit` at `time`.
    pub fn save(&mut self, unit: &str, time: SimTime, snapshot: Snapshot) {
        let q = self.per_unit.entry(unit.to_owned()).or_default();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back((time, snapshot));
    }

    /// The most recent checkpoint for `unit`.
    pub fn latest(&self, unit: &str) -> Option<&Snapshot> {
        self.per_unit
            .get(unit)
            .and_then(|q| q.back())
            .map(|(_, s)| s)
    }

    /// The most recent checkpoint at or before `time`.
    pub fn at_or_before(&self, unit: &str, time: SimTime) -> Option<&Snapshot> {
        self.per_unit
            .get(unit)?
            .iter()
            .rev()
            .find(|(t, _)| *t <= time)
            .map(|(_, s)| s)
    }

    /// Number of checkpoints retained for `unit`.
    pub fn count(&self, unit: &str) -> usize {
        self.per_unit.get(unit).map_or(0, |q| q.len())
    }

    /// Drops all checkpoints of `unit`.
    pub fn clear(&mut self, unit: &str) {
        self.per_unit.remove(unit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(v: f64) -> Snapshot {
        let mut s = Snapshot::new();
        s.insert("x".into(), v);
        s
    }

    #[test]
    fn saves_and_retrieves_latest() {
        let mut store = CheckpointStore::new(3);
        store.save("u", SimTime::from_millis(1), snap(1.0));
        store.save("u", SimTime::from_millis(2), snap(2.0));
        assert_eq!(store.latest("u").unwrap()["x"], 2.0);
        assert_eq!(store.count("u"), 2);
        assert!(store.latest("other").is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut store = CheckpointStore::new(2);
        for i in 1..=4u64 {
            store.save("u", SimTime::from_millis(i), snap(i as f64));
        }
        assert_eq!(store.count("u"), 2);
        assert_eq!(
            store.at_or_before("u", SimTime::from_millis(3)).unwrap()["x"],
            3.0
        );
        // Oldest retained is 3: nothing at or before 2.
        assert!(store.at_or_before("u", SimTime::from_millis(2)).is_none());
    }

    #[test]
    fn clear_removes_unit_history() {
        let mut store = CheckpointStore::new(2);
        store.save("u", SimTime::ZERO, snap(1.0));
        store.clear("u");
        assert_eq!(store.count("u"), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CheckpointStore::new(0);
    }
}
