//! # recovery — partial recovery, load balancing, adaptive arbitration
//!
//! The recovery research of the Trader project (paper Sect. 4.5):
//!
//! * **Recoverable units** (Twente University): a framework "which allows
//!   independent recovery of parts of the system", with a *communication
//!   manager* controlling messages between units and a *recovery manager*
//!   executing recovery actions "such as killing and restarting units".
//!   See [`RecoverableUnit`], [`UnitHost`], [`CommManager`],
//!   [`RecoveryManager`].
//! * **Load balancing** (IMEC): migrating an image-processing task off an
//!   overloaded processor improves image quality under overload. See
//!   [`LoadBalancer`]; the migration mechanism lives in
//!   `tvsim::StreamingPipeline`.
//! * **Adaptive memory arbitration** (NXP Research): re-allocating
//!   arbiter slots at run time to resolve memory-access problems. See
//!   [`AdaptiveArbiter`] over `simkit::MemoryArbiter`.
//! * A **reusable fault-tolerance library**: [`library::retry`],
//!   [`library::CircuitBreaker`], [`library::Redundant`].
//! * **Micro-reboot checkpoints**: [`CheckpointVault`] seals per-unit
//!   snapshots with seed-derived fingerprints so a faulty unit can be
//!   restored from its newest *valid* generation while the rest of the
//!   system keeps serving — the paper's local-recovery rung below a full
//!   restart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod comm_manager;
pub mod library;
pub mod loadbalance;
pub mod memarbiter;
pub mod microreboot;
pub mod policy;
pub mod recovery_manager;
pub mod unit;

pub use checkpoint::{CheckpointStore, Snapshot};
pub use comm_manager::{CommManager, RestartPolicy, UnitMessage};
pub use library::{retry, CircuitBreaker, Redundant};
pub use loadbalance::{LoadBalancer, MigrationDecision};
pub use memarbiter::AdaptiveArbiter;
pub use microreboot::{
    seal_fingerprint, CheckpointVault, RestoreOutcome, SealedSnapshot, VaultStats,
};
pub use policy::EscalationPolicy;
pub use recovery_manager::{RecoveryAction, RecoveryManager, RecoveryRecord};
pub use unit::{CounterUnit, RecoverableUnit, UnitHost, UnitStatus};
