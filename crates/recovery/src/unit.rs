//! Recoverable units and their host.

use crate::checkpoint::Snapshot;
use crate::comm_manager::UnitMessage;
use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A part of the system that can be recovered independently
/// (paper Sect. 4.5: "the so-called recoverable units").
pub trait RecoverableUnit {
    /// The unit's unique name.
    fn name(&self) -> &str;

    /// Captures the unit's state.
    fn checkpoint(&self) -> Snapshot;

    /// Restores a previously captured state.
    fn restore(&mut self, snapshot: &Snapshot);

    /// Cold-restarts the unit to its initial state.
    fn reset(&mut self);

    /// Handles an application message, possibly responding.
    fn handle(&mut self, now: SimTime, message: &UnitMessage) -> Vec<UnitMessage>;

    /// Health self-check (false = the unit detected internal corruption).
    fn is_healthy(&self) -> bool {
        true
    }
}

/// A unit's lifecycle status as seen by the managers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitStatus {
    /// Processing messages normally.
    Running,
    /// Killed and restarting; becomes `Running` at the given instant.
    Restarting {
        /// Restart completion time.
        until: SimTime,
    },
    /// Permanently failed (gave up).
    Failed,
}

impl fmt::Display for UnitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitStatus::Running => f.write_str("running"),
            UnitStatus::Restarting { until } => write!(f, "restarting(until {until})"),
            UnitStatus::Failed => f.write_str("failed"),
        }
    }
}

/// Hosts the system's recoverable units with their statuses.
pub struct UnitHost {
    units: BTreeMap<String, Box<dyn RecoverableUnit>>,
    status: BTreeMap<String, UnitStatus>,
}

impl fmt::Debug for UnitHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnitHost")
            .field("units", &self.units.keys().collect::<Vec<_>>())
            .field("status", &self.status)
            .finish()
    }
}

impl Default for UnitHost {
    fn default() -> Self {
        Self::new()
    }
}

impl UnitHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        UnitHost {
            units: BTreeMap::new(),
            status: BTreeMap::new(),
        }
    }

    /// Registers a unit (initially running).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate unit name.
    pub fn register(&mut self, unit: impl RecoverableUnit + 'static) {
        let name = unit.name().to_owned();
        assert!(!self.units.contains_key(&name), "duplicate unit `{name}`");
        self.units.insert(name.clone(), Box::new(unit));
        self.status.insert(name, UnitStatus::Running);
    }

    /// Unit names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.units.keys().map(String::as_str).collect()
    }

    /// A unit's status.
    pub fn status(&self, name: &str) -> Option<UnitStatus> {
        self.status.get(name).copied()
    }

    /// Sets a unit's status (manager use).
    pub(crate) fn set_status(&mut self, name: &str, status: UnitStatus) {
        if let Some(s) = self.status.get_mut(name) {
            *s = status;
        }
    }

    /// True if the unit exists and is running.
    pub fn is_running(&self, name: &str) -> bool {
        matches!(self.status.get(name), Some(UnitStatus::Running))
    }

    /// Mutable access to a unit (manager use: checkpoint/restore/reset).
    pub fn unit_mut(&mut self, name: &str) -> Option<&mut (dyn RecoverableUnit + '_)> {
        self.units.get_mut(name).map(|b| b.as_mut() as _)
    }

    /// Read access to a unit.
    pub fn unit(&self, name: &str) -> Option<&(dyn RecoverableUnit + '_)> {
        self.units.get(name).map(|b| b.as_ref() as _)
    }

    /// Delivers a message to a *running* unit, returning its responses;
    /// `None` if the unit is absent or not running.
    pub fn deliver(&mut self, now: SimTime, message: &UnitMessage) -> Option<Vec<UnitMessage>> {
        if !self.is_running(&message.to) {
            return None;
        }
        self.units
            .get_mut(&message.to)
            .map(|u| u.handle(now, message))
    }

    /// Completes restarts due at `now`; returns the units that came back.
    pub fn tick(&mut self, now: SimTime) -> Vec<String> {
        let mut back = Vec::new();
        for (name, status) in self.status.iter_mut() {
            if let UnitStatus::Restarting { until } = *status {
                if now >= until {
                    *status = UnitStatus::Running;
                    back.push(name.clone());
                }
            }
        }
        back
    }

    /// Names of unhealthy running units (self-check sweep).
    pub fn unhealthy(&self) -> Vec<&str> {
        self.units
            .values()
            .filter(|u| {
                matches!(self.status.get(u.name()), Some(UnitStatus::Running)) && !u.is_healthy()
            })
            .map(|u| u.name())
            .collect()
    }
}

/// A simple counter-based unit usable in tests and examples.
#[derive(Debug, Clone)]
pub struct CounterUnit {
    name: String,
    /// Monotonic message counter — the unit's "state".
    pub count: f64,
    /// Set by fault injection; cleared by reset.
    pub corrupted: bool,
}

impl CounterUnit {
    /// Creates a unit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CounterUnit {
            name: name.into(),
            count: 0.0,
            corrupted: false,
        }
    }
}

impl RecoverableUnit for CounterUnit {
    fn name(&self) -> &str {
        &self.name
    }

    fn checkpoint(&self) -> Snapshot {
        let mut s = Snapshot::new();
        s.insert("count".into(), self.count);
        s
    }

    fn restore(&mut self, snapshot: &Snapshot) {
        self.count = snapshot.get("count").copied().unwrap_or(0.0);
        self.corrupted = false;
    }

    fn reset(&mut self) {
        self.count = 0.0;
        self.corrupted = false;
    }

    fn handle(&mut self, _now: SimTime, message: &UnitMessage) -> Vec<UnitMessage> {
        self.count += 1.0;
        if message.topic == "ping" {
            vec![UnitMessage {
                to: message.reply_to.clone().unwrap_or_default(),
                topic: "pong".into(),
                value: self.count,
                reply_to: None,
            }]
        } else {
            Vec::new()
        }
    }

    fn is_healthy(&self) -> bool {
        !self.corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(to: &str, topic: &str) -> UnitMessage {
        UnitMessage {
            to: to.into(),
            topic: topic.into(),
            value: 0.0,
            reply_to: Some("tester".into()),
        }
    }

    #[test]
    fn register_and_deliver() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("audio"));
        assert!(host.is_running("audio"));
        let responses = host.deliver(SimTime::ZERO, &msg("audio", "ping")).unwrap();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].topic, "pong");
        assert_eq!(responses[0].to, "tester");
    }

    #[test]
    fn restarting_unit_rejects_messages_until_tick() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("audio"));
        host.set_status(
            "audio",
            UnitStatus::Restarting {
                until: SimTime::from_millis(100),
            },
        );
        assert!(host.deliver(SimTime::ZERO, &msg("audio", "ping")).is_none());
        assert!(host.tick(SimTime::from_millis(50)).is_empty());
        let back = host.tick(SimTime::from_millis(100));
        assert_eq!(back, vec!["audio".to_owned()]);
        assert!(host.is_running("audio"));
    }

    #[test]
    fn unhealthy_sweep_finds_corruption() {
        let mut host = UnitHost::new();
        let mut u = CounterUnit::new("video");
        u.corrupted = true;
        host.register(u);
        host.register(CounterUnit::new("audio"));
        assert_eq!(host.unhealthy(), vec!["video"]);
    }

    #[test]
    fn unknown_unit_returns_none() {
        let mut host = UnitHost::new();
        assert!(host.deliver(SimTime::ZERO, &msg("ghost", "ping")).is_none());
        assert!(host.status("ghost").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate unit")]
    fn duplicate_name_panics() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        host.register(CounterUnit::new("a"));
    }

    #[test]
    fn counter_unit_checkpoint_roundtrip() {
        let mut u = CounterUnit::new("u");
        u.handle(SimTime::ZERO, &msg("u", "tick"));
        u.handle(SimTime::ZERO, &msg("u", "tick"));
        let snap = u.checkpoint();
        u.reset();
        assert_eq!(u.count, 0.0);
        u.restore(&snap);
        assert_eq!(u.count, 2.0);
    }
}
