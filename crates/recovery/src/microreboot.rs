//! Crash-consistent micro-reboot checkpoints with validated integrity.
//!
//! The paper's local-recovery principle (Sect. 4.5) is that rebooting the
//! whole TV because one unit wedged is exactly the user-visible failure
//! awareness exists to prevent. This module provides the storage side of
//! micro-reboots: a [`CheckpointVault`] keeps a bounded per-unit history
//! of **sealed** snapshots — each stamped with a seed-derived FNV-1a
//! fingerprint computed over the unit name, capture time, generation id,
//! and every key/value pair. On restore the fingerprint is re-validated;
//! a corrupt or torn checkpoint (chaos injects both, see
//! [`CheckpointVault::corrupt_latest`] / [`CheckpointVault::tear_latest`])
//! is skipped generation-by-generation until the newest *good* one is
//! found. Only when the whole history is bad does the caller escalate to
//! a full restart.
//!
//! Crash consistency is the caller's side of the contract: snapshots must
//! be taken from error-free windows and reconciled after restore by
//! replaying the post-checkpoint inputs journalled alongside (the loop
//! keeps a per-unit key-press journal; the monitor replays from the
//! flight recorder).

use crate::checkpoint::Snapshot;
use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::{BTreeMap, VecDeque};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A snapshot sealed with its integrity fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SealedSnapshot {
    /// Virtual time the snapshot was captured at.
    pub time: SimTime,
    /// Monotonically increasing generation id (vault-wide).
    pub generation: u64,
    /// Seed-derived FNV-1a fingerprint of the payload.
    pub fingerprint: u64,
    /// The checkpointed key/value state.
    pub state: Snapshot,
}

/// Outcome of [`CheckpointVault::restore_latest`].
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreOutcome {
    /// A valid checkpoint was found (newest good generation).
    Restored {
        /// Generation id of the restored snapshot.
        generation: u64,
        /// Capture time of the restored snapshot.
        time: SimTime,
        /// The validated state.
        state: Snapshot,
        /// Corrupt newer generations skipped (and dropped) on the way.
        skipped: u64,
    },
    /// Every generation in the history failed validation.
    Exhausted {
        /// Corrupt generations dropped from the history.
        dropped: u64,
    },
    /// The unit has no checkpoint history at all.
    NoHistory,
}

impl RestoreOutcome {
    /// True when a valid checkpoint was restored.
    pub fn is_restored(&self) -> bool {
        matches!(self, RestoreOutcome::Restored { .. })
    }
}

/// Counters describing vault activity (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VaultStats {
    /// Snapshots sealed and saved.
    pub saved: u64,
    /// Successful restores.
    pub restored: u64,
    /// Snapshots that failed fingerprint validation on restore.
    pub corrupt_detected: u64,
    /// Snapshots evicted by the capacity bound.
    pub evicted: u64,
}

/// A bounded per-unit store of fingerprint-sealed snapshots.
///
/// ```
/// use recovery::{CheckpointVault, RestoreOutcome, Snapshot};
/// use simkit::SimTime;
///
/// let mut vault = CheckpointVault::new(7, 4);
/// let mut state = Snapshot::new();
/// state.insert("volume".into(), 20.0);
/// let generation = vault.save("audio", SimTime::from_millis(5), state.clone());
/// match vault.restore_latest("audio") {
///     RestoreOutcome::Restored { generation: g, state: s, skipped, .. } => {
///         assert_eq!(g, generation);
///         assert_eq!(s, state);
///         assert_eq!(skipped, 0);
///     }
///     other => panic!("expected a restore, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointVault {
    seed: u64,
    capacity: usize,
    next_generation: u64,
    per_unit: BTreeMap<String, VecDeque<SealedSnapshot>>,
    stats: VaultStats,
}

impl CheckpointVault {
    /// Creates an empty vault keeping at most `capacity` generations per
    /// unit. The `seed` keys the fingerprints so two vaults with
    /// different seeds never validate each other's checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(seed: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CheckpointVault {
            seed,
            capacity,
            next_generation: 0,
            per_unit: BTreeMap::new(),
            stats: VaultStats::default(),
        }
    }

    /// The fingerprint seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Activity counters.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// Seals `state` and appends it to `unit`'s history, evicting the
    /// oldest generation when at capacity. Returns the generation id.
    pub fn save(&mut self, unit: &str, time: SimTime, state: Snapshot) -> u64 {
        let generation = self.next_generation;
        self.next_generation += 1;
        let fingerprint = self.fingerprint(unit, time, generation, &state);
        let history = self.per_unit.entry(unit.to_string()).or_default();
        if history.len() == self.capacity {
            history.pop_front();
            self.stats.evicted += 1;
        }
        history.push_back(SealedSnapshot {
            time,
            generation,
            fingerprint,
            state,
        });
        self.stats.saved += 1;
        generation
    }

    /// The newest stored generation for `unit` (without validating it).
    pub fn latest_generation(&self, unit: &str) -> Option<u64> {
        self.per_unit
            .get(unit)
            .and_then(|h| h.back())
            .map(|s| s.generation)
    }

    /// Number of generations currently stored for `unit`.
    pub fn count(&self, unit: &str) -> usize {
        self.per_unit.get(unit).map_or(0, VecDeque::len)
    }

    /// The newest stored generation per unit, in unit-name order — the
    /// forensic-header view of where a replay would restart from.
    pub fn latest_generations(&self) -> Vec<(String, u64)> {
        self.per_unit
            .iter()
            .filter_map(|(unit, h)| h.back().map(|s| (unit.clone(), s.generation)))
            .collect()
    }

    /// Restores the newest generation of `unit` that passes fingerprint
    /// validation, dropping corrupt newer generations on the way. Returns
    /// [`RestoreOutcome::Exhausted`] when the whole history is bad (the
    /// history is then empty) and [`RestoreOutcome::NoHistory`] when the
    /// unit was never checkpointed.
    pub fn restore_latest(&mut self, unit: &str) -> RestoreOutcome {
        let Some(history) = self.per_unit.get_mut(unit) else {
            return RestoreOutcome::NoHistory;
        };
        if history.is_empty() {
            return RestoreOutcome::NoHistory;
        }
        let mut skipped = 0u64;
        while let Some(candidate) = history.pop_back() {
            let expect = seal_fingerprint(
                self.seed,
                unit,
                candidate.time,
                candidate.generation,
                &candidate.state,
            );
            if candidate.fingerprint == expect {
                // Valid: keep it as the new head so repeated restores of
                // the same generation keep working.
                let outcome = RestoreOutcome::Restored {
                    generation: candidate.generation,
                    time: candidate.time,
                    state: candidate.state.clone(),
                    skipped,
                };
                history.push_back(candidate);
                self.stats.restored += 1;
                return outcome;
            }
            skipped += 1;
            self.stats.corrupt_detected += 1;
        }
        RestoreOutcome::Exhausted { dropped: skipped }
    }

    /// Discards all history for `unit` (e.g. after a full restart makes
    /// the checkpoints stale).
    pub fn clear_unit(&mut self, unit: &str) {
        self.per_unit.remove(unit);
    }

    /// Chaos hook: flips `bit` (0–63) of one stored value in `unit`'s
    /// newest snapshot **without resealing** — a silent data corruption
    /// the fingerprint must catch. Returns true if anything was flipped.
    pub fn corrupt_latest(&mut self, unit: &str, bit: u32) -> bool {
        let Some(snap) = self.per_unit.get_mut(unit).and_then(VecDeque::back_mut) else {
            return false;
        };
        let Some((_, value)) = snap.state.iter_mut().next() else {
            return false;
        };
        *value = f64::from_bits(value.to_bits() ^ (1u64 << (bit % 64)));
        true
    }

    /// Chaos hook: removes one key from `unit`'s newest snapshot without
    /// resealing — a torn (partially written) checkpoint. Returns true if
    /// a key was removed.
    pub fn tear_latest(&mut self, unit: &str) -> bool {
        let Some(snap) = self.per_unit.get_mut(unit).and_then(VecDeque::back_mut) else {
            return false;
        };
        let Some(key) = snap.state.keys().next().cloned() else {
            return false;
        };
        snap.state.remove(&key);
        true
    }

    fn fingerprint(&self, unit: &str, time: SimTime, generation: u64, state: &Snapshot) -> u64 {
        seal_fingerprint(self.seed, unit, time, generation, state)
    }
}

/// The seed-derived FNV-1a fingerprint a [`SealedSnapshot`] carries.
pub fn seal_fingerprint(
    seed: u64,
    unit: &str,
    time: SimTime,
    generation: u64,
    state: &Snapshot,
) -> u64 {
    let mut h = FNV_OFFSET;
    let mix_u64 = |v: u64, h: &mut u64| {
        for b in v.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix_u64(seed, &mut h);
    for b in unit.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix_u64(time.as_nanos(), &mut h);
    mix_u64(generation, &mut h);
    for (key, value) in state {
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        mix_u64(value.to_bits(), &mut h);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, f64)]) -> Snapshot {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn save_restore_round_trips() {
        let mut vault = CheckpointVault::new(42, 4);
        let state = snap(&[("page", 100.0), ("ui_on", 1.0)]);
        let g = vault.save("teletext", SimTime::from_millis(10), state.clone());
        match vault.restore_latest("teletext") {
            RestoreOutcome::Restored {
                generation,
                time,
                state: restored,
                skipped,
            } => {
                assert_eq!(generation, g);
                assert_eq!(time, SimTime::from_millis(10));
                assert_eq!(restored, state);
                assert_eq!(skipped, 0);
            }
            other => panic!("expected restore, got {other:?}"),
        }
        // Restoring again still works: the valid head stays stored.
        assert!(vault.restore_latest("teletext").is_restored());
    }

    #[test]
    fn corrupt_checkpoint_falls_back_a_generation() {
        let mut vault = CheckpointVault::new(7, 4);
        vault.save("audio", SimTime::from_millis(1), snap(&[("volume", 20.0)]));
        vault.save("audio", SimTime::from_millis(2), snap(&[("volume", 25.0)]));
        assert!(vault.corrupt_latest("audio", 3));
        match vault.restore_latest("audio") {
            RestoreOutcome::Restored { state, skipped, .. } => {
                assert_eq!(state, snap(&[("volume", 20.0)]));
                assert_eq!(skipped, 1);
            }
            other => panic!("expected fallback restore, got {other:?}"),
        }
        assert_eq!(vault.stats().corrupt_detected, 1);
    }

    #[test]
    fn torn_checkpoint_detected() {
        let mut vault = CheckpointVault::new(7, 4);
        vault.save(
            "screen",
            SimTime::from_millis(1),
            snap(&[("menu", 0.0), ("pip", 1.0)]),
        );
        assert!(vault.tear_latest("screen"));
        assert_eq!(
            vault.restore_latest("screen"),
            RestoreOutcome::Exhausted { dropped: 1 }
        );
    }

    #[test]
    fn whole_bad_history_exhausts() {
        let mut vault = CheckpointVault::new(7, 4);
        for i in 0..3 {
            vault.save("tuner", SimTime::from_millis(i), snap(&[("ch", i as f64)]));
            vault.corrupt_latest("tuner", 0);
        }
        assert_eq!(
            vault.restore_latest("tuner"),
            RestoreOutcome::Exhausted { dropped: 3 }
        );
        // The history is spent; the next restore sees no history.
        assert_eq!(vault.restore_latest("tuner"), RestoreOutcome::NoHistory);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut vault = CheckpointVault::new(7, 2);
        let g0 = vault.save("sleep", SimTime::from_millis(0), snap(&[("m", 0.0)]));
        let g1 = vault.save("sleep", SimTime::from_millis(1), snap(&[("m", 15.0)]));
        let g2 = vault.save("sleep", SimTime::from_millis(2), snap(&[("m", 30.0)]));
        assert_eq!(vault.count("sleep"), 2);
        assert_eq!(vault.stats().evicted, 1);
        assert!(g0 < g1 && g1 < g2);
        assert_eq!(vault.latest_generation("sleep"), Some(g2));
        // Only g1 and g2 remain; corrupting both exhausts exactly 2.
        vault.corrupt_latest("sleep", 1);
        match vault.restore_latest("sleep") {
            RestoreOutcome::Restored { generation, .. } => assert_eq!(generation, g1),
            other => panic!("expected g1, got {other:?}"),
        }
    }

    #[test]
    fn different_seed_rejects_foreign_seal() {
        let mut a = CheckpointVault::new(1, 2);
        a.save("swivel", SimTime::from_millis(1), snap(&[("angle", 15.0)]));
        // Replaying the same content under another seed produces a
        // different fingerprint.
        let fp1 = seal_fingerprint(
            1,
            "swivel",
            SimTime::from_millis(1),
            0,
            &snap(&[("angle", 15.0)]),
        );
        let fp2 = seal_fingerprint(
            2,
            "swivel",
            SimTime::from_millis(1),
            0,
            &snap(&[("angle", 15.0)]),
        );
        assert_ne!(fp1, fp2);
    }

    #[test]
    fn latest_generations_lists_units_in_order() {
        let mut vault = CheckpointVault::new(7, 4);
        vault.save("tuner", SimTime::from_millis(1), snap(&[("ch", 1.0)]));
        vault.save("audio", SimTime::from_millis(2), snap(&[("v", 2.0)]));
        let g = vault.save("audio", SimTime::from_millis(3), snap(&[("v", 3.0)]));
        let gens = vault.latest_generations();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].0, "audio");
        assert_eq!(gens[0].1, g);
        assert_eq!(gens[1].0, "tuner");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CheckpointVault::new(0, 0);
    }
}
