//! Load-balancing policy (IMEC's task migration, paper Sect. 4.5).
//!
//! The policy decides *when* and *where* to migrate; the mechanism (moving
//! a task's jobs between processors) lives with the platform
//! (`tvsim::StreamingPipeline::migrate_task`, `simkit::Cpu::steal_task`).

use serde::{Deserialize, Serialize};

/// A migration decision: move load from one processor to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationDecision {
    /// Overloaded source processor index.
    pub from: usize,
    /// Least-loaded target processor index.
    pub to: usize,
}

/// Threshold-plus-hysteresis load balancer.
///
/// Migrates when a processor exceeds `overload_threshold` while another
/// sits below `target_threshold`; after a decision, `cooldown_checks`
/// checks pass before the next decision (migration is not free, so the
/// policy must not thrash).
///
/// ```
/// use recovery::LoadBalancer;
/// let mut lb = LoadBalancer::new(0.9, 0.6, 2);
/// let d = lb.check(&[0.97, 0.3]).unwrap();
/// assert_eq!((d.from, d.to), (0, 1));
/// // Cooldown: immediately after, no new decision.
/// assert!(lb.check(&[0.97, 0.3]).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadBalancer {
    overload_threshold: f64,
    target_threshold: f64,
    cooldown_checks: u32,
    cooldown_left: u32,
    decisions: u64,
}

impl LoadBalancer {
    /// Creates a balancer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_threshold < overload_threshold <= 1`.
    pub fn new(overload_threshold: f64, target_threshold: f64, cooldown_checks: u32) -> Self {
        assert!(
            0.0 < target_threshold
                && target_threshold < overload_threshold
                && overload_threshold <= 1.0,
            "invalid thresholds"
        );
        LoadBalancer {
            overload_threshold,
            target_threshold,
            cooldown_checks,
            cooldown_left: 0,
            decisions: 0,
        }
    }

    /// Decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Checks current loads; returns a migration decision if warranted.
    pub fn check(&mut self, loads: &[f64]) -> Option<MigrationDecision> {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        if loads.len() < 2 {
            return None;
        }
        let (from, &max) = loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))?;
        let (to, &min) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))?;
        if max > self.overload_threshold && min < self.target_threshold && from != to {
            self.cooldown_left = self.cooldown_checks;
            self.decisions += 1;
            Some(MigrationDecision { from, to })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_decision_when_balanced() {
        let mut lb = LoadBalancer::new(0.9, 0.6, 0);
        assert!(lb.check(&[0.5, 0.5]).is_none());
        assert!(lb.check(&[0.95, 0.8]).is_none()); // no idle target
        assert!(lb.check(&[0.5, 0.2]).is_none()); // no overload
        assert_eq!(lb.decisions(), 0);
    }

    #[test]
    fn decision_picks_extremes() {
        let mut lb = LoadBalancer::new(0.9, 0.6, 0);
        let d = lb.check(&[0.7, 0.95, 0.1]).unwrap();
        assert_eq!((d.from, d.to), (1, 2));
        assert_eq!(lb.decisions(), 1);
    }

    #[test]
    fn cooldown_suppresses_thrash() {
        let mut lb = LoadBalancer::new(0.9, 0.6, 2);
        assert!(lb.check(&[0.95, 0.1]).is_some());
        assert!(lb.check(&[0.95, 0.1]).is_none());
        assert!(lb.check(&[0.95, 0.1]).is_none());
        assert!(lb.check(&[0.95, 0.1]).is_some());
    }

    #[test]
    fn single_cpu_never_migrates() {
        let mut lb = LoadBalancer::new(0.9, 0.6, 0);
        assert!(lb.check(&[0.99]).is_none());
        assert!(lb.check(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid thresholds")]
    fn bad_thresholds_rejected() {
        let _ = LoadBalancer::new(0.5, 0.9, 0);
    }
}
