//! The recovery manager: executes recovery actions.

use crate::checkpoint::{CheckpointStore, Snapshot};
use crate::unit::{UnitHost, UnitStatus};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::fmt;
use telemetry::Telemetry;

/// A recovery action (paper Sect. 4.5: "recovery actions such as killing
/// and restarting units").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Kill and cold-restart one unit.
    RestartUnit(String),
    /// Restore one unit from its latest checkpoint (warm recovery).
    RollbackUnit(String),
    /// Kill a unit permanently (isolate a faulty third-party component).
    KillUnit(String),
    /// Restart the whole system (the classical, expensive fallback).
    RestartAll,
}

impl RecoveryAction {
    /// A static label for telemetry events (no allocation).
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryAction::RestartUnit(_) => "restart_unit",
            RecoveryAction::RollbackUnit(_) => "rollback_unit",
            RecoveryAction::KillUnit(_) => "kill_unit",
            RecoveryAction::RestartAll => "restart_all",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::RestartUnit(u) => write!(f, "restart `{u}`"),
            RecoveryAction::RollbackUnit(u) => write!(f, "rollback `{u}`"),
            RecoveryAction::KillUnit(u) => write!(f, "kill `{u}`"),
            RecoveryAction::RestartAll => f.write_str("restart all"),
        }
    }
}

/// A log record of one executed action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// When the action started.
    pub time: SimTime,
    /// The action.
    pub action: RecoveryAction,
    /// How long the affected functionality was (or will be) unavailable.
    pub outage: SimDuration,
}

/// Executes recovery actions against a [`UnitHost`].
///
/// Timing model: restarting one unit costs `unit_restart`; restarting the
/// whole system costs `full_restart` (typically 10–30× more — the cost
/// asymmetry that motivates partial recovery); a rollback costs
/// `rollback`.
#[derive(Debug)]
pub struct RecoveryManager {
    unit_restart: SimDuration,
    full_restart: SimDuration,
    rollback: SimDuration,
    checkpoints: CheckpointStore,
    log: Vec<RecoveryRecord>,
    total_outage: SimDuration,
    telemetry: Telemetry,
}

impl RecoveryManager {
    /// Creates a manager with the given action durations.
    ///
    /// # Panics
    ///
    /// Panics if any duration is zero.
    pub fn new(
        unit_restart: SimDuration,
        full_restart: SimDuration,
        rollback: SimDuration,
    ) -> Self {
        assert!(
            !unit_restart.is_zero() && !full_restart.is_zero() && !rollback.is_zero(),
            "recovery durations must be positive"
        );
        RecoveryManager {
            unit_restart,
            full_restart,
            rollback,
            checkpoints: CheckpointStore::new(8),
            log: Vec::new(),
            total_outage: SimDuration::ZERO,
            telemetry: Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle (per-action transition events plus an
    /// `outage_ns` histogram in virtual nanoseconds).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// A manager with the durations used in the recovery experiments:
    /// 200 ms unit restart, 4 s full restart, 50 ms rollback.
    pub fn with_defaults() -> Self {
        RecoveryManager::new(
            SimDuration::from_millis(200),
            SimDuration::from_secs(4),
            SimDuration::from_millis(50),
        )
    }

    /// The executed-action log.
    pub fn log(&self) -> &[RecoveryRecord] {
        &self.log
    }

    /// Cumulative user-visible outage across all actions.
    pub fn total_outage(&self) -> SimDuration {
        self.total_outage
    }

    /// The checkpoint store.
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }

    /// Checkpoints every running unit at `now`.
    pub fn checkpoint_all(&mut self, now: SimTime, host: &mut UnitHost) {
        let names: Vec<String> = host.names().iter().map(|s| s.to_string()).collect();
        for name in names {
            if host.is_running(&name) {
                if let Some(unit) = host.unit(&name) {
                    let snap: Snapshot = unit.checkpoint();
                    self.checkpoints.save(&name, now, snap);
                    self.telemetry
                        .metric_incr("recovery.manager.checkpoints", 1);
                }
            }
        }
    }

    /// Executes an action at `now`.
    ///
    /// Returns the outage the action incurs, or `None` if the target does
    /// not exist.
    pub fn recover(
        &mut self,
        now: SimTime,
        host: &mut UnitHost,
        action: RecoveryAction,
    ) -> Option<SimDuration> {
        let outage = match &action {
            RecoveryAction::RestartUnit(name) => {
                host.status(name)?;
                if let Some(unit) = host.unit_mut(name) {
                    unit.reset();
                }
                host.set_status(
                    name,
                    UnitStatus::Restarting {
                        until: now + self.unit_restart,
                    },
                );
                self.unit_restart
            }
            RecoveryAction::RollbackUnit(name) => {
                host.status(name)?;
                let snap = self.checkpoints.latest(name)?.clone();
                if let Some(unit) = host.unit_mut(name) {
                    unit.restore(&snap);
                }
                host.set_status(
                    name,
                    UnitStatus::Restarting {
                        until: now + self.rollback,
                    },
                );
                self.rollback
            }
            RecoveryAction::KillUnit(name) => {
                host.status(name)?;
                host.set_status(name, UnitStatus::Failed);
                SimDuration::ZERO
            }
            RecoveryAction::RestartAll => {
                let names: Vec<String> = host.names().iter().map(|s| s.to_string()).collect();
                for name in &names {
                    if let Some(unit) = host.unit_mut(name) {
                        unit.reset();
                    }
                    host.set_status(
                        name,
                        UnitStatus::Restarting {
                            until: now + self.full_restart,
                        },
                    );
                }
                self.full_restart
            }
        };
        self.total_outage += outage;
        self.telemetry
            .transition(now, "recovery.manager.action", "idle", action.label());
        self.telemetry
            .observe_ns("recovery.manager.outage_ns", outage.as_nanos());
        self.log.push(RecoveryRecord {
            time: now,
            action,
            outage,
        });
        Some(outage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_manager::UnitMessage;
    use crate::unit::CounterUnit;

    fn msg(to: &str) -> UnitMessage {
        UnitMessage {
            to: to.into(),
            topic: "tick".into(),
            value: 0.0,
            reply_to: None,
        }
    }

    fn host_with(names: &[&str]) -> UnitHost {
        let mut host = UnitHost::new();
        for n in names {
            host.register(CounterUnit::new(*n));
        }
        host
    }

    #[test]
    fn restart_unit_resets_and_times_out() {
        let mut host = host_with(&["a", "b"]);
        host.deliver(SimTime::ZERO, &msg("a"));
        let mut rm = RecoveryManager::with_defaults();
        let outage = rm
            .recover(
                SimTime::ZERO,
                &mut host,
                RecoveryAction::RestartUnit("a".into()),
            )
            .unwrap();
        assert_eq!(outage, SimDuration::from_millis(200));
        assert!(!host.is_running("a"));
        assert!(
            host.is_running("b"),
            "partial recovery leaves peers running"
        );
        host.tick(SimTime::from_millis(200));
        assert!(host.is_running("a"));
        assert_eq!(rm.log().len(), 1);
    }

    #[test]
    fn rollback_restores_checkpoint() {
        let mut host = host_with(&["a"]);
        host.deliver(SimTime::ZERO, &msg("a"));
        host.deliver(SimTime::ZERO, &msg("a"));
        let mut rm = RecoveryManager::with_defaults();
        rm.checkpoint_all(SimTime::ZERO, &mut host);
        host.deliver(SimTime::ZERO, &msg("a"));
        rm.recover(
            SimTime::ZERO,
            &mut host,
            RecoveryAction::RollbackUnit("a".into()),
        )
        .unwrap();
        host.tick(SimTime::from_millis(50));
        // Count restored to the checkpointed 2, not 3.
        host.deliver(SimTime::from_millis(50), &msg("a"));
        let snap = host.unit("a").unwrap().checkpoint();
        assert_eq!(snap["count"], 3.0);
    }

    #[test]
    fn rollback_without_checkpoint_fails() {
        let mut host = host_with(&["a"]);
        let mut rm = RecoveryManager::with_defaults();
        assert!(rm
            .recover(
                SimTime::ZERO,
                &mut host,
                RecoveryAction::RollbackUnit("a".into())
            )
            .is_none());
    }

    #[test]
    fn restart_all_is_much_more_expensive() {
        let mut host = host_with(&["a", "b", "c"]);
        let mut rm = RecoveryManager::with_defaults();
        let partial = rm
            .recover(
                SimTime::ZERO,
                &mut host,
                RecoveryAction::RestartUnit("a".into()),
            )
            .unwrap();
        let full = rm
            .recover(SimTime::ZERO, &mut host, RecoveryAction::RestartAll)
            .unwrap();
        assert!(full.as_nanos() >= partial.as_nanos() * 10);
        for n in ["a", "b", "c"] {
            assert!(!host.is_running(n));
        }
        assert_eq!(rm.total_outage(), partial + full);
    }

    #[test]
    fn kill_unit_is_permanent() {
        let mut host = host_with(&["a"]);
        let mut rm = RecoveryManager::with_defaults();
        rm.recover(
            SimTime::ZERO,
            &mut host,
            RecoveryAction::KillUnit("a".into()),
        );
        assert_eq!(host.status("a"), Some(UnitStatus::Failed));
        host.tick(SimTime::from_secs(100));
        assert!(!host.is_running("a"));
    }

    #[test]
    fn unknown_unit_returns_none() {
        let mut host = host_with(&[]);
        let mut rm = RecoveryManager::with_defaults();
        assert!(rm
            .recover(
                SimTime::ZERO,
                &mut host,
                RecoveryAction::RestartUnit("ghost".into())
            )
            .is_none());
    }

    #[test]
    fn action_display() {
        assert_eq!(
            RecoveryAction::RestartUnit("x".into()).to_string(),
            "restart `x`"
        );
        assert_eq!(RecoveryAction::RestartAll.to_string(), "restart all");
    }
}
