//! The communication manager: controls messages between recoverable units.
//!
//! While a unit restarts, its peers keep sending; the communication
//! manager decides what happens to those messages (queue for redelivery or
//! drop), which is what makes *independent* recovery possible without
//! stopping the whole system (paper Sect. 4.5).

use crate::unit::UnitHost;
use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// A message between recoverable units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitMessage {
    /// Destination unit.
    pub to: String,
    /// Application topic.
    pub topic: String,
    /// Scalar payload.
    pub value: f64,
    /// Where replies go, if anywhere.
    pub reply_to: Option<String>,
}

/// What to do with messages addressed to a restarting unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartPolicy {
    /// Queue and redeliver when the unit is back (lossless, higher memory).
    Queue,
    /// Drop (lossy, zero overhead — acceptable for idempotent streams).
    Drop,
}

/// Communication statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Messages delivered directly.
    pub delivered: u64,
    /// Messages queued during a restart.
    pub queued: u64,
    /// Messages redelivered after a restart.
    pub redelivered: u64,
    /// Messages dropped.
    pub dropped: u64,
}

/// Routes messages between units, honoring restart policies.
#[derive(Debug)]
pub struct CommManager {
    default_policy: RestartPolicy,
    policies: BTreeMap<String, RestartPolicy>,
    pending: BTreeMap<String, VecDeque<UnitMessage>>,
    stats: CommStats,
}

impl CommManager {
    /// Creates a manager with the given default restart policy.
    pub fn new(default_policy: RestartPolicy) -> Self {
        CommManager {
            default_policy,
            policies: BTreeMap::new(),
            pending: BTreeMap::new(),
            stats: CommStats::default(),
        }
    }

    /// Overrides the policy for one unit.
    pub fn set_policy(&mut self, unit: &str, policy: RestartPolicy) {
        self.policies.insert(unit.to_owned(), policy);
    }

    /// The policy for `unit`.
    pub fn policy(&self, unit: &str) -> RestartPolicy {
        self.policies
            .get(unit)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Statistics so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Messages queued for `unit`.
    pub fn queued_for(&self, unit: &str) -> usize {
        self.pending.get(unit).map_or(0, |q| q.len())
    }

    /// Sends a message, cascading responses breadth-first.
    ///
    /// Returns the number of messages delivered (including cascades).
    pub fn send(&mut self, now: SimTime, host: &mut UnitHost, message: UnitMessage) -> u64 {
        let mut frontier = VecDeque::from([message]);
        let mut delivered = 0;
        // Bounded cascade to keep misbehaving units from looping forever.
        let mut budget = 10_000u32;
        while let Some(msg) = frontier.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if msg.to.is_empty() {
                continue;
            }
            match host.deliver(now, &msg) {
                Some(responses) => {
                    delivered += 1;
                    self.stats.delivered += 1;
                    frontier.extend(responses);
                }
                None => match self.policy(&msg.to) {
                    RestartPolicy::Queue if host.status(&msg.to).is_some() => {
                        self.stats.queued += 1;
                        self.pending
                            .entry(msg.to.clone())
                            .or_default()
                            .push_back(msg);
                    }
                    _ => {
                        self.stats.dropped += 1;
                    }
                },
            }
        }
        delivered
    }

    /// Redelivers queued messages to units that came back at `now`.
    ///
    /// Call after [`UnitHost::tick`]; `returned` is its result.
    pub fn flush_returned(
        &mut self,
        now: SimTime,
        host: &mut UnitHost,
        returned: &[String],
    ) -> u64 {
        let mut total = 0;
        for unit in returned {
            let Some(queue) = self.pending.remove(unit) else {
                continue;
            };
            for msg in queue {
                self.stats.redelivered += 1;
                total += self.send(now, host, msg);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{CounterUnit, UnitStatus};

    fn msg(to: &str) -> UnitMessage {
        UnitMessage {
            to: to.into(),
            topic: "tick".into(),
            value: 1.0,
            reply_to: None,
        }
    }

    #[test]
    fn direct_delivery() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        let mut comm = CommManager::new(RestartPolicy::Queue);
        assert_eq!(comm.send(SimTime::ZERO, &mut host, msg("a")), 1);
        assert_eq!(comm.stats().delivered, 1);
    }

    #[test]
    fn queue_policy_redelivers_after_restart() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        host.set_status(
            "a",
            UnitStatus::Restarting {
                until: SimTime::from_millis(10),
            },
        );
        let mut comm = CommManager::new(RestartPolicy::Queue);
        comm.send(SimTime::ZERO, &mut host, msg("a"));
        comm.send(SimTime::ZERO, &mut host, msg("a"));
        assert_eq!(comm.queued_for("a"), 2);
        let returned = host.tick(SimTime::from_millis(10));
        let redelivered = comm.flush_returned(SimTime::from_millis(10), &mut host, &returned);
        assert_eq!(redelivered, 2);
        assert_eq!(comm.stats().redelivered, 2);
        assert_eq!(comm.queued_for("a"), 0);
    }

    #[test]
    fn drop_policy_loses_messages() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        host.set_status(
            "a",
            UnitStatus::Restarting {
                until: SimTime::from_millis(10),
            },
        );
        let mut comm = CommManager::new(RestartPolicy::Drop);
        comm.send(SimTime::ZERO, &mut host, msg("a"));
        assert_eq!(comm.stats().dropped, 1);
        assert_eq!(comm.queued_for("a"), 0);
    }

    #[test]
    fn per_unit_policy_override() {
        let mut comm = CommManager::new(RestartPolicy::Queue);
        comm.set_policy("video", RestartPolicy::Drop);
        assert_eq!(comm.policy("video"), RestartPolicy::Drop);
        assert_eq!(comm.policy("audio"), RestartPolicy::Queue);
    }

    #[test]
    fn unknown_destination_dropped_even_with_queue_policy() {
        let mut host = UnitHost::new();
        let mut comm = CommManager::new(RestartPolicy::Queue);
        comm.send(SimTime::ZERO, &mut host, msg("ghost"));
        assert_eq!(comm.stats().dropped, 1);
    }

    #[test]
    fn responses_cascade() {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        host.register(CounterUnit::new("b"));
        let mut comm = CommManager::new(RestartPolicy::Queue);
        // "ping" to a replies to b, which counts it.
        let delivered = comm.send(
            SimTime::ZERO,
            &mut host,
            UnitMessage {
                to: "a".into(),
                topic: "ping".into(),
                value: 0.0,
                reply_to: Some("b".into()),
            },
        );
        assert_eq!(delivered, 2);
    }
}
