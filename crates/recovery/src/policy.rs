//! Escalation policy: when partial recovery stops being enough.

use crate::recovery_manager::RecoveryAction;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Escalation ladder for repeated failures of the same unit.
///
/// Within a sliding `window`, a unit gets `max_restarts` unit-level
/// restarts; the next failure escalates to a whole-system restart
/// (and clears the history). This encodes the engineering judgment that a
/// unit failing repeatedly is probably corrupting shared state.
///
/// ```
/// use recovery::{EscalationPolicy, RecoveryAction};
/// use simkit::{SimDuration, SimTime};
///
/// let mut policy = EscalationPolicy::new(2, SimDuration::from_secs(10));
/// let at = SimTime::ZERO;
/// assert_eq!(policy.decide(at, "audio"), RecoveryAction::RestartUnit("audio".into()));
/// assert_eq!(policy.decide(at, "audio"), RecoveryAction::RestartUnit("audio".into()));
/// assert_eq!(policy.decide(at, "audio"), RecoveryAction::RestartAll);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EscalationPolicy {
    max_restarts: u32,
    window: SimDuration,
    history: BTreeMap<String, Vec<SimTime>>,
    escalations: u64,
}

impl EscalationPolicy {
    /// Creates a policy allowing `max_restarts` per unit per `window`.
    ///
    /// # Panics
    ///
    /// Panics if `max_restarts` is zero or the window is zero.
    pub fn new(max_restarts: u32, window: SimDuration) -> Self {
        assert!(max_restarts > 0, "must allow at least one restart");
        assert!(!window.is_zero(), "window must be positive");
        EscalationPolicy {
            max_restarts,
            window,
            history: BTreeMap::new(),
            escalations: 0,
        }
    }

    /// Times the policy escalated to a full restart.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Decides the recovery action for a failure of `unit` at `now`.
    pub fn decide(&mut self, now: SimTime, unit: &str) -> RecoveryAction {
        let cutoff = now - self.window;
        let entry = self.history.entry(unit.to_owned()).or_default();
        entry.retain(|t| *t >= cutoff);
        if entry.len() < self.max_restarts as usize {
            entry.push(now);
            RecoveryAction::RestartUnit(unit.to_owned())
        } else {
            self.escalations += 1;
            self.history.clear();
            RecoveryAction::RestartAll
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_after_budget_exhausted() {
        let mut p = EscalationPolicy::new(2, SimDuration::from_secs(10));
        let t = SimTime::from_secs(100);
        assert!(matches!(p.decide(t, "v"), RecoveryAction::RestartUnit(_)));
        assert!(matches!(p.decide(t, "v"), RecoveryAction::RestartUnit(_)));
        assert_eq!(p.decide(t, "v"), RecoveryAction::RestartAll);
        assert_eq!(p.escalations(), 1);
        // History cleared: budget is fresh.
        assert!(matches!(p.decide(t, "v"), RecoveryAction::RestartUnit(_)));
    }

    #[test]
    fn window_expiry_refreshes_budget() {
        let mut p = EscalationPolicy::new(1, SimDuration::from_secs(10));
        assert!(matches!(
            p.decide(SimTime::from_secs(0), "v"),
            RecoveryAction::RestartUnit(_)
        ));
        // 11s later: the old restart fell out of the window.
        assert!(matches!(
            p.decide(SimTime::from_secs(11), "v"),
            RecoveryAction::RestartUnit(_)
        ));
    }

    #[test]
    fn units_tracked_independently() {
        let mut p = EscalationPolicy::new(1, SimDuration::from_secs(10));
        let t = SimTime::from_secs(5);
        assert!(matches!(p.decide(t, "a"), RecoveryAction::RestartUnit(_)));
        assert!(matches!(p.decide(t, "b"), RecoveryAction::RestartUnit(_)));
        assert_eq!(p.decide(t, "a"), RecoveryAction::RestartAll);
    }
}
