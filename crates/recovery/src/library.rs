//! The reusable fault-tolerance library.
//!
//! Paper Sect. 4.5: "To realize these concepts, a reusable fault tolerance
//! library has been implemented." The combinators here are the
//! building blocks recovery code is written with: bounded retry, a
//! circuit breaker that stops hammering a failing component, and a
//! primary/backup selector.

use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};

/// Retries `op` up to `attempts` times (attempt indices `0..attempts`).
///
/// Returns the first success, or the last error.
///
/// # Panics
///
/// Panics if `attempts` is zero.
///
/// ```
/// use recovery::retry;
/// let mut tries = 0;
/// let result: Result<u32, &str> = retry(3, |i| {
///     tries += 1;
///     if i < 2 { Err("flaky") } else { Ok(42) }
/// });
/// assert_eq!(result, Ok(42));
/// assert_eq!(tries, 3);
/// ```
pub fn retry<T, E>(attempts: u32, mut op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
    assert!(attempts > 0, "need at least one attempt");
    let mut last = None;
    for i in 0..attempts {
        match op(i) {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Calls pass through.
    Closed,
    /// Calls are rejected until the cool-down elapses.
    Open {
        /// When the breaker half-opens.
        until: SimTime,
    },
    /// One probe call is allowed.
    HalfOpen,
}

/// A circuit breaker over simulated time.
///
/// After `failure_threshold` consecutive failures the breaker opens for
/// `cooldown`; the first call after cool-down is a probe (half-open):
/// success closes the breaker, failure re-opens it. While the probe is
/// in flight, further calls are rejected — exactly one probe may be
/// outstanding at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    state: BreakerState,
    rejected: u64,
    probe_in_flight: bool,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero or the cooldown is zero.
    pub fn new(failure_threshold: u32, cooldown: SimDuration) -> Self {
        assert!(failure_threshold > 0, "threshold must be positive");
        assert!(!cooldown.is_zero(), "cooldown must be positive");
        CircuitBreaker {
            failure_threshold,
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            rejected: 0,
            probe_in_flight: false,
        }
    }

    /// Current state (resolving due half-open transitions at `now`).
    pub fn state(&mut self, now: SimTime) -> BreakerState {
        if let BreakerState::Open { until } = self.state {
            if now >= until {
                self.state = BreakerState::HalfOpen;
                self.probe_in_flight = false;
            }
        }
        self.state
    }

    /// Calls rejected while open.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// True if a call may proceed at `now`.
    ///
    /// In half-open, exactly one probe is admitted until its outcome is
    /// [`CircuitBreaker::record`]ed; concurrent callers are rejected.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    self.rejected += 1;
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
            BreakerState::Open { .. } => {
                self.rejected += 1;
                false
            }
        }
    }

    /// Records the outcome of a permitted call.
    pub fn record(&mut self, now: SimTime, success: bool) {
        self.probe_in_flight = false;
        match (self.state(now), success) {
            (BreakerState::HalfOpen, true) | (BreakerState::Closed, true) => {
                self.consecutive_failures = 0;
                self.state = BreakerState::Closed;
            }
            (BreakerState::HalfOpen, false) => {
                self.state = BreakerState::Open {
                    until: now + self.cooldown,
                };
            }
            (BreakerState::Closed, false) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cooldown,
                    };
                }
            }
            (BreakerState::Open { .. }, _) => {}
        }
    }
}

/// Primary/backup selection: use the primary until it fails, then the
/// backup (the cheapest form of redundancy the cost envelope allows).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Redundant<T> {
    primary: T,
    backup: T,
    on_backup: bool,
    failovers: u64,
}

impl<T> Redundant<T> {
    /// Creates a pair, active on the primary.
    pub fn new(primary: T, backup: T) -> Self {
        Redundant {
            primary,
            backup,
            on_backup: false,
            failovers: 0,
        }
    }

    /// The currently active element.
    pub fn active(&self) -> &T {
        if self.on_backup {
            &self.backup
        } else {
            &self.primary
        }
    }

    /// Mutable access to the active element.
    pub fn active_mut(&mut self) -> &mut T {
        if self.on_backup {
            &mut self.backup
        } else {
            &mut self.primary
        }
    }

    /// Switches to the backup (idempotent). Returns true on the first
    /// switch.
    pub fn failover(&mut self) -> bool {
        if self.on_backup {
            false
        } else {
            self.on_backup = true;
            self.failovers += 1;
            true
        }
    }

    /// Switches back to the (repaired) primary.
    pub fn restore_primary(&mut self) {
        self.on_backup = false;
    }

    /// True while on the backup.
    pub fn is_on_backup(&self) -> bool {
        self.on_backup
    }

    /// Failovers performed.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_returns_first_success() {
        let r: Result<u32, &str> = retry(5, |i| if i == 0 { Ok(1) } else { Err("no") });
        assert_eq!(r, Ok(1));
    }

    #[test]
    fn retry_exhausts_to_last_error() {
        let mut calls = 0;
        let r: Result<(), u32> = retry(3, |i| {
            calls += 1;
            Err(i)
        });
        assert_eq!(r, Err(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let mut b = CircuitBreaker::new(2, SimDuration::from_millis(100));
        let t = SimTime::ZERO;
        assert!(b.allows(t));
        b.record(t, false);
        assert!(b.allows(t));
        b.record(t, false);
        assert!(!b.allows(t), "breaker must be open");
        assert_eq!(b.rejected(), 1);
    }

    #[test]
    fn breaker_half_open_probe() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_millis(100));
        b.record(SimTime::ZERO, false);
        assert!(!b.allows(SimTime::from_millis(50)));
        // Cooldown elapsed: one probe allowed.
        assert!(b.allows(SimTime::from_millis(100)));
        b.record(SimTime::from_millis(100), true);
        assert_eq!(b.state(SimTime::from_millis(100)), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_admits_exactly_one_probe() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_millis(100));
        b.record(SimTime::ZERO, false);
        let t = SimTime::from_millis(100);
        // Cooldown elapsed: the first caller gets the probe slot ...
        assert!(b.allows(t));
        // ... and every concurrent caller is rejected while it is in
        // flight (this used to admit unlimited probes).
        assert!(!b.allows(t), "second probe must be rejected");
        assert!(!b.allows(t), "third probe must be rejected");
        assert_eq!(b.rejected(), 2);
        // The probe's outcome frees the slot: success closes the breaker
        // and traffic flows again.
        b.record(t, true);
        assert_eq!(b.state(t), BreakerState::Closed);
        assert!(b.allows(t));
        assert!(b.allows(t));
        assert_eq!(b.rejected(), 2);
    }

    #[test]
    fn breaker_failed_probe_frees_slot_after_next_cooldown() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_millis(100));
        b.record(SimTime::ZERO, false);
        assert!(b.allows(SimTime::from_millis(100)));
        b.record(SimTime::from_millis(100), false);
        // Re-opened; after the next cooldown a fresh probe is admitted
        // even though the previous probe failed.
        assert!(b.allows(SimTime::from_millis(200)));
        assert!(!b.allows(SimTime::from_millis(200)));
    }

    #[test]
    fn breaker_reopens_on_failed_probe() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_millis(100));
        b.record(SimTime::ZERO, false);
        assert!(b.allows(SimTime::from_millis(100)));
        b.record(SimTime::from_millis(100), false);
        assert!(!b.allows(SimTime::from_millis(150)));
        assert!(b.allows(SimTime::from_millis(200)));
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(2, SimDuration::from_millis(100));
        b.record(SimTime::ZERO, false);
        b.record(SimTime::ZERO, true);
        b.record(SimTime::ZERO, false);
        assert!(b.allows(SimTime::ZERO), "streak was broken by success");
    }

    #[test]
    fn redundant_failover() {
        let mut r = Redundant::new("tuner-a", "tuner-b");
        assert_eq!(*r.active(), "tuner-a");
        assert!(r.failover());
        assert!(!r.failover());
        assert_eq!(*r.active(), "tuner-b");
        assert!(r.is_on_backup());
        assert_eq!(r.failovers(), 1);
        r.restore_primary();
        assert_eq!(*r.active(), "tuner-a");
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_panics() {
        let _: Result<(), ()> = retry(0, |_| Ok(()));
    }
}
