//! Adaptive memory arbitration (NXP Research, paper Sect. 4.5).
//!
//! Watches per-port memory latencies and reweights the TDM slot table at
//! run time when a port misses its latency target — "mak\[ing\] memory
//! arbitration more flexible such that it can be adapted at run-time to
//! deal with problems concerning memory access".

use serde::{Deserialize, Serialize};
use simkit::resource::PortId;
use simkit::{MemoryArbiter, SimDuration, SlotTable};
use std::collections::BTreeMap;

/// Per-port latency targets and adaptation bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveArbiter {
    targets: BTreeMap<PortId, SimDuration>,
    /// Current weight per port (slots in the generated table).
    weights: BTreeMap<PortId, u32>,
    /// Stats baseline at the previous adapt call, per port:
    /// (requests, latency_sum) — adaptation judges the latency of the
    /// *window since the last check*, not the lifetime mean.
    baseline: BTreeMap<PortId, (u64, SimDuration)>,
    max_weight: u32,
    adaptations: u64,
}

impl AdaptiveArbiter {
    /// Creates an adaptive policy over the given ports, one slot each.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or `max_weight` is zero.
    pub fn new(ports: &[PortId], max_weight: u32) -> Self {
        assert!(!ports.is_empty(), "need at least one port");
        assert!(max_weight > 0, "max weight must be positive");
        AdaptiveArbiter {
            targets: BTreeMap::new(),
            weights: ports.iter().map(|p| (*p, 1)).collect(),
            baseline: BTreeMap::new(),
            max_weight,
            adaptations: 0,
        }
    }

    /// Sets a port's mean-latency target.
    pub fn set_target(&mut self, port: PortId, target: SimDuration) {
        self.targets.insert(port, target);
    }

    /// The current weight of a port.
    pub fn weight(&self, port: PortId) -> u32 {
        self.weights.get(&port).copied().unwrap_or(0)
    }

    /// Adaptations performed.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// The slot table implied by the current weights.
    pub fn table(&self) -> SlotTable {
        let ports: Vec<PortId> = self.weights.keys().copied().collect();
        let weights: Vec<u32> = self.weights.values().copied().collect();
        SlotTable::weighted(&ports, &weights)
    }

    /// Checks the latency measured *since the previous adapt call*
    /// against targets; if a port is over target (and can still grow),
    /// boosts its weight and reconfigures the arbiter. Returns true if a
    /// reconfiguration happened.
    pub fn adapt(&mut self, arbiter: &mut MemoryArbiter) -> bool {
        let mut changed = false;
        for (&port, &target) in &self.targets {
            let Some(stats) = arbiter.port_stats(port) else {
                continue;
            };
            let (base_req, base_sum) = self
                .baseline
                .get(&port)
                .copied()
                .unwrap_or((0, SimDuration::ZERO));
            let delta_req = stats.requests.saturating_sub(base_req);
            if delta_req == 0 {
                continue;
            }
            let delta_mean = (stats.latency_sum - base_sum) / delta_req;
            self.baseline
                .insert(port, (stats.requests, stats.latency_sum));
            if delta_mean > target {
                let w = self.weights.entry(port).or_insert(0);
                if *w < self.max_weight {
                    *w += 1;
                    changed = true;
                }
            }
        }
        if changed {
            arbiter.reconfigure(self.table());
            self.adaptations += 1;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{MemoryRequest, SimTime};

    fn ports() -> [PortId; 2] {
        [PortId(0), PortId(1)]
    }

    #[test]
    fn boosts_over_target_port() {
        let ps = ports();
        let mut policy = AdaptiveArbiter::new(&ps, 4);
        policy.set_target(PortId(1), SimDuration::from_micros(15));
        let mut arb = MemoryArbiter::new(policy.table(), SimDuration::from_micros(10));
        // Port 1 suffers: it owns the second slot, every request waits.
        for k in 0..20u64 {
            arb.request(
                SimTime::from_micros(k * 20),
                MemoryRequest {
                    port: PortId(1),
                    bursts: 1,
                },
            );
        }
        assert!(arb.port_stats(PortId(1)).unwrap().mean_latency() > SimDuration::from_micros(15));
        assert!(policy.adapt(&mut arb));
        assert_eq!(policy.weight(PortId(1)), 2);
        assert_eq!(arb.reconfigurations(), 1);
        assert!((arb.table().share(PortId(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn within_target_no_change() {
        let ps = ports();
        let mut policy = AdaptiveArbiter::new(&ps, 4);
        policy.set_target(PortId(0), SimDuration::from_micros(1_000));
        let mut arb = MemoryArbiter::new(policy.table(), SimDuration::from_micros(10));
        arb.request(
            SimTime::ZERO,
            MemoryRequest {
                port: PortId(0),
                bursts: 1,
            },
        );
        assert!(!policy.adapt(&mut arb));
        assert_eq!(policy.adaptations(), 0);
    }

    #[test]
    fn weight_capped_at_max() {
        let ps = ports();
        let mut policy = AdaptiveArbiter::new(&ps, 2);
        policy.set_target(PortId(1), SimDuration::from_nanos(1));
        let mut arb = MemoryArbiter::new(policy.table(), SimDuration::from_micros(10));
        for round in 0..5u64 {
            for k in 0..10u64 {
                arb.request(
                    SimTime::from_micros(round * 1_000 + k * 50),
                    MemoryRequest {
                        port: PortId(1),
                        bursts: 1,
                    },
                );
            }
            policy.adapt(&mut arb);
        }
        assert_eq!(policy.weight(PortId(1)), 2, "must cap at max_weight");
    }

    #[test]
    fn no_stats_no_adaptation() {
        let ps = ports();
        let mut policy = AdaptiveArbiter::new(&ps, 4);
        policy.set_target(PortId(0), SimDuration::from_nanos(1));
        let mut arb = MemoryArbiter::new(policy.table(), SimDuration::from_micros(10));
        assert!(!policy.adapt(&mut arb));
    }
}
