//! Property-based tests of the recovery framework's invariants.

use proptest::prelude::*;
use recovery::{
    CheckpointStore, CheckpointVault, CircuitBreaker, CommManager, CounterUnit, EscalationPolicy,
    RecoveryAction, RecoveryManager, RestartPolicy, RestoreOutcome, Snapshot, UnitHost,
    UnitMessage,
};
use simkit::{SimDuration, SimTime};

/// A non-empty snapshot built from generated (key index, bits) pairs;
/// values go through `f64::from_bits` so every bit pattern (NaN payloads
/// included) is exercised. Duplicate key indices collapse, so the result
/// may be smaller than `pairs` but never empty.
fn snapshot_from_pairs(pairs: &[(u8, u64)]) -> Snapshot {
    pairs
        .iter()
        .map(|(k, bits)| (format!("key{k}"), f64::from_bits(*bits)))
        .collect()
}

/// Byte-identical comparison: key-for-key, bit-for-bit (plain `==` would
/// call NaN != NaN).
fn bits_equal(a: &Snapshot, b: &Snapshot) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((ka, va), (kb, vb))| ka == kb && va.to_bits() == vb.to_bits())
}

fn msg(to: &str) -> UnitMessage {
    UnitMessage {
        to: to.into(),
        topic: "t".into(),
        value: 0.0,
        reply_to: None,
    }
}

proptest! {
    /// Message conservation under the Queue policy: every sent message is
    /// eventually delivered or still queued — never silently lost.
    #[test]
    fn queue_policy_conserves_messages(
        ops in prop::collection::vec((0u8..3, 0u64..100), 1..100)
    ) {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("u"));
        let mut comm = CommManager::new(RestartPolicy::Queue);
        let mut manager = RecoveryManager::with_defaults();
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        for (op, gap) in ops {
            now += SimDuration::from_millis(gap);
            match op {
                0 => {
                    comm.send(now, &mut host, msg("u"));
                    sent += 1;
                }
                1 => {
                    // Restart (only when running, like a real manager).
                    if host.is_running("u") {
                        manager.recover(now, &mut host, RecoveryAction::RestartUnit("u".into()));
                    }
                }
                _ => {
                    let back = host.tick(now);
                    comm.flush_returned(now, &mut host, &back);
                }
            }
        }
        let stats = comm.stats();
        prop_assert_eq!(stats.dropped, 0, "queue policy must not drop");
        // Ledger: every one of my sends is either delivered or still
        // queued; redeliveries consume a queued entry and produce a
        // delivery (or re-queue), so they cancel out of the balance.
        prop_assert_eq!(
            stats.delivered + comm.queued_for("u") as u64,
            sent
        );
    }

    /// The circuit breaker: a success while closed always keeps it
    /// closed; `failure_threshold` consecutive failures always open it;
    /// and it never rejects while closed.
    #[test]
    fn breaker_state_machine(
        threshold in 1u32..5,
        outcomes in prop::collection::vec(any::<bool>(), 1..100)
    ) {
        let cooldown = SimDuration::from_millis(100);
        let mut b = CircuitBreaker::new(threshold, cooldown);
        let mut consecutive_failures = 0u32;
        let mut now = SimTime::ZERO;
        for &success in &outcomes {
            now += SimDuration::from_millis(1); // < cooldown: stays open
            if b.allows(now) {
                b.record(now, success);
                if success {
                    consecutive_failures = 0;
                } else {
                    consecutive_failures += 1;
                }
            } else {
                // Must only reject after enough consecutive failures.
                prop_assert!(consecutive_failures >= threshold);
            }
        }
    }

    /// Escalation policy: within a window, a unit never gets more than
    /// `max_restarts` unit-level restarts before a full restart.
    #[test]
    fn escalation_budget_respected(
        max_restarts in 1u32..4,
        failures in prop::collection::vec(0u64..5, 1..40)
    ) {
        let window = SimDuration::from_secs(1_000); // everything in-window
        let mut policy = EscalationPolicy::new(max_restarts, window);
        let mut now = SimTime::ZERO;
        let mut partial_since_escalation = 0u32;
        for gap in failures {
            now += SimDuration::from_millis(gap);
            match policy.decide(now, "u") {
                RecoveryAction::RestartUnit(_) => {
                    partial_since_escalation += 1;
                    prop_assert!(partial_since_escalation <= max_restarts);
                }
                RecoveryAction::RestartAll => {
                    partial_since_escalation = 0;
                }
                other => prop_assert!(false, "unexpected action {other:?}"),
            }
        }
    }

    /// Recovery outage accounting is additive and matches the log.
    #[test]
    fn outage_matches_log(actions in prop::collection::vec(0u8..3, 1..30)) {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        host.register(CounterUnit::new("b"));
        let mut manager = RecoveryManager::with_defaults();
        manager.checkpoint_all(SimTime::ZERO, &mut host);
        let mut now = SimTime::ZERO;
        for a in actions {
            now += SimDuration::from_secs(10);
            host.tick(now);
            let action = match a {
                0 => RecoveryAction::RestartUnit("a".into()),
                1 => RecoveryAction::RollbackUnit("b".into()),
                _ => RecoveryAction::RestartAll,
            };
            manager.recover(now, &mut host, action);
        }
        let from_log: SimDuration = manager
            .log()
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.outage);
        prop_assert_eq!(from_log, manager.total_outage());
    }

    /// Checkpoint round-trip: whatever bit patterns go into a store come
    /// back byte-identical from `latest` — no canonicalisation, no drift.
    #[test]
    fn checkpoint_store_round_trips_byte_identical(
        pairs in prop::collection::vec((0u8..26, any::<u64>()), 1..8)
    ) {
        let state = snapshot_from_pairs(&pairs);
        let mut store = CheckpointStore::new(4);
        store.save("unit", SimTime::from_millis(3), state.clone());
        let back = store.latest("unit").expect("just saved");
        prop_assert!(bits_equal(back, &state));

        // The sealed vault upholds the same contract through a restore.
        let mut vault = CheckpointVault::new(99, 4);
        vault.save("unit", SimTime::from_millis(3), state.clone());
        match vault.restore_latest("unit") {
            RestoreOutcome::Restored { state: restored, skipped, .. } => {
                prop_assert!(bits_equal(&restored, &state));
                prop_assert_eq!(skipped, 0);
            }
            other => prop_assert!(false, "expected restore, got {other:?}"),
        }
    }

    /// `at_or_before` always returns the newest retained checkpoint not
    /// newer than the query time, and nothing when all retained
    /// checkpoints are newer.
    #[test]
    fn at_or_before_respects_ordering(
        capacity in 1usize..6,
        gaps in prop::collection::vec(1u64..50, 1..20),
        query_ms in 0u64..1_000,
    ) {
        let mut store = CheckpointStore::new(capacity);
        let mut times = Vec::new();
        let mut t = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            t += gap; // strictly increasing capture times
            let mut s = Snapshot::new();
            s.insert("i".into(), i as f64);
            store.save("u", SimTime::from_millis(t), s);
            times.push(t);
        }
        let retained = &times[times.len().saturating_sub(capacity)..];
        let query = SimTime::from_millis(query_ms);
        let expect = retained
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| SimTime::from_millis(**t) <= query)
            .map(|(i, _)| (times.len() - retained.len() + i) as f64);
        let got = store.at_or_before("u", query).map(|s| s["i"]);
        prop_assert_eq!(got, expect);
    }

    /// Eviction keeps exactly the newest `capacity` generations: count
    /// never exceeds capacity, the newest generation is always the last
    /// saved, and the vault's eviction counter matches the overflow.
    #[test]
    fn eviction_keeps_newest_capacity(
        capacity in 1usize..5,
        saves in 1usize..12,
    ) {
        let mut vault = CheckpointVault::new(7, capacity);
        let mut last = 0;
        for i in 0..saves {
            let mut s = Snapshot::new();
            s.insert("v".into(), i as f64);
            last = vault.save("u", SimTime::from_millis(i as u64), s);
        }
        prop_assert_eq!(vault.count("u"), saves.min(capacity));
        prop_assert_eq!(vault.latest_generation("u"), Some(last));
        prop_assert_eq!(vault.stats().evicted, saves.saturating_sub(capacity) as u64);
        // The retained head restores to the last saved value.
        match vault.restore_latest("u") {
            RestoreOutcome::Restored { generation, state, .. } => {
                prop_assert_eq!(generation, last);
                prop_assert_eq!(state["v"], (saves - 1) as f64);
            }
            other => prop_assert!(false, "expected restore, got {other:?}"),
        }
    }

    /// Any single-bit flip in a sealed value is caught by the
    /// fingerprint: the corrupted generation is never served, and the
    /// vault falls back to the intact one underneath.
    #[test]
    fn single_bit_corruption_is_always_detected(
        bit in 0u32..64,
        pairs in prop::collection::vec((0u8..26, 0u64..1_000), 1..6)
    ) {
        let state = snapshot_from_pairs(&pairs);
        let mut vault = CheckpointVault::new(13, 4);
        vault.save("u", SimTime::from_millis(1), state.clone());
        vault.save("u", SimTime::from_millis(2), state.clone());
        prop_assert!(vault.corrupt_latest("u", bit));
        match vault.restore_latest("u") {
            RestoreOutcome::Restored { state: restored, skipped, time, .. } => {
                prop_assert_eq!(skipped, 1, "corrupt head must be skipped");
                prop_assert_eq!(time, SimTime::from_millis(1));
                prop_assert!(bits_equal(&restored, &state));
            }
            other => prop_assert!(false, "expected fallback, got {other:?}"),
        }
        prop_assert_eq!(vault.stats().corrupt_detected, 1);
    }
}
