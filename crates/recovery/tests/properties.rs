//! Property-based tests of the recovery framework's invariants.

use proptest::prelude::*;
use recovery::{
    CircuitBreaker, CommManager, CounterUnit, EscalationPolicy, RecoveryAction, RecoveryManager,
    RestartPolicy, UnitHost, UnitMessage,
};
use simkit::{SimDuration, SimTime};

fn msg(to: &str) -> UnitMessage {
    UnitMessage {
        to: to.into(),
        topic: "t".into(),
        value: 0.0,
        reply_to: None,
    }
}

proptest! {
    /// Message conservation under the Queue policy: every sent message is
    /// eventually delivered or still queued — never silently lost.
    #[test]
    fn queue_policy_conserves_messages(
        ops in prop::collection::vec((0u8..3, 0u64..100), 1..100)
    ) {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("u"));
        let mut comm = CommManager::new(RestartPolicy::Queue);
        let mut manager = RecoveryManager::with_defaults();
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        for (op, gap) in ops {
            now += SimDuration::from_millis(gap);
            match op {
                0 => {
                    comm.send(now, &mut host, msg("u"));
                    sent += 1;
                }
                1 => {
                    // Restart (only when running, like a real manager).
                    if host.is_running("u") {
                        manager.recover(now, &mut host, RecoveryAction::RestartUnit("u".into()));
                    }
                }
                _ => {
                    let back = host.tick(now);
                    comm.flush_returned(now, &mut host, &back);
                }
            }
        }
        let stats = comm.stats();
        prop_assert_eq!(stats.dropped, 0, "queue policy must not drop");
        // Ledger: every one of my sends is either delivered or still
        // queued; redeliveries consume a queued entry and produce a
        // delivery (or re-queue), so they cancel out of the balance.
        prop_assert_eq!(
            stats.delivered + comm.queued_for("u") as u64,
            sent
        );
    }

    /// The circuit breaker: a success while closed always keeps it
    /// closed; `failure_threshold` consecutive failures always open it;
    /// and it never rejects while closed.
    #[test]
    fn breaker_state_machine(
        threshold in 1u32..5,
        outcomes in prop::collection::vec(any::<bool>(), 1..100)
    ) {
        let cooldown = SimDuration::from_millis(100);
        let mut b = CircuitBreaker::new(threshold, cooldown);
        let mut consecutive_failures = 0u32;
        let mut now = SimTime::ZERO;
        for &success in &outcomes {
            now += SimDuration::from_millis(1); // < cooldown: stays open
            if b.allows(now) {
                b.record(now, success);
                if success {
                    consecutive_failures = 0;
                } else {
                    consecutive_failures += 1;
                }
            } else {
                // Must only reject after enough consecutive failures.
                prop_assert!(consecutive_failures >= threshold);
            }
        }
    }

    /// Escalation policy: within a window, a unit never gets more than
    /// `max_restarts` unit-level restarts before a full restart.
    #[test]
    fn escalation_budget_respected(
        max_restarts in 1u32..4,
        failures in prop::collection::vec(0u64..5, 1..40)
    ) {
        let window = SimDuration::from_secs(1_000); // everything in-window
        let mut policy = EscalationPolicy::new(max_restarts, window);
        let mut now = SimTime::ZERO;
        let mut partial_since_escalation = 0u32;
        for gap in failures {
            now += SimDuration::from_millis(gap);
            match policy.decide(now, "u") {
                RecoveryAction::RestartUnit(_) => {
                    partial_since_escalation += 1;
                    prop_assert!(partial_since_escalation <= max_restarts);
                }
                RecoveryAction::RestartAll => {
                    partial_since_escalation = 0;
                }
                other => prop_assert!(false, "unexpected action {other:?}"),
            }
        }
    }

    /// Recovery outage accounting is additive and matches the log.
    #[test]
    fn outage_matches_log(actions in prop::collection::vec(0u8..3, 1..30)) {
        let mut host = UnitHost::new();
        host.register(CounterUnit::new("a"));
        host.register(CounterUnit::new("b"));
        let mut manager = RecoveryManager::with_defaults();
        manager.checkpoint_all(SimTime::ZERO, &mut host);
        let mut now = SimTime::ZERO;
        for a in actions {
            now += SimDuration::from_secs(10);
            host.tick(now);
            let action = match a {
                0 => RecoveryAction::RestartUnit("a".into()),
                1 => RecoveryAction::RollbackUnit("b".into()),
                _ => RecoveryAction::RestartAll,
            };
            manager.recover(now, &mut host, action);
        }
        let from_log: SimDuration = manager
            .log()
            .iter()
            .fold(SimDuration::ZERO, |acc, r| acc + r.outage);
        prop_assert_eq!(from_log, manager.total_outage());
    }
}
