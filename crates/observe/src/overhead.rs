//! Monitoring-overhead accounting.
//!
//! The paper's central constraint: dependability measures for high-volume
//! products must come "with minimal additional hardware costs and without
//! degrading performance". Every probe firing charges this account; the
//! observation-overhead experiment (E9) reads it back.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Accumulates the processing cost of monitoring.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadAccount {
    total: SimDuration,
    charges: u64,
}

impl OverheadAccount {
    /// A fresh, empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one probe firing.
    pub fn charge(&mut self, cost: SimDuration) {
        self.total += cost;
        self.charges += 1;
    }

    /// Total charged time.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Number of charges.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Overhead as a fraction of an execution window.
    ///
    /// Returns 0.0 for an empty window.
    pub fn fraction_of(&self, window: SimDuration) -> f64 {
        self.total.ratio(window)
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &OverheadAccount) {
        self.total += other.total;
        self.charges += other.charges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut acc = OverheadAccount::new();
        acc.charge(SimDuration::from_nanos(100));
        acc.charge(SimDuration::from_nanos(50));
        assert_eq!(acc.total(), SimDuration::from_nanos(150));
        assert_eq!(acc.charges(), 2);
    }

    #[test]
    fn fraction() {
        let mut acc = OverheadAccount::new();
        acc.charge(SimDuration::from_millis(1));
        assert!((acc.fraction_of(SimDuration::from_millis(100)) - 0.01).abs() < 1e-12);
        assert_eq!(acc.fraction_of(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_adds_both_fields() {
        let mut a = OverheadAccount::new();
        a.charge(SimDuration::from_nanos(10));
        let mut b = OverheadAccount::new();
        b.charge(SimDuration::from_nanos(5));
        b.charge(SimDuration::from_nanos(5));
        a.merge(&b);
        assert_eq!(a.total(), SimDuration::from_nanos(20));
        assert_eq!(a.charges(), 3);
    }
}
