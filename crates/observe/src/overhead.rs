//! Monitoring-overhead accounting.
//!
//! The paper's central constraint: dependability measures for high-volume
//! products must come "with minimal additional hardware costs and without
//! degrading performance". Every probe firing charges this account; the
//! observation-overhead experiment (E9) reads it back.

use serde::{Deserialize, Serialize};
use simkit::SimDuration;

/// Accumulates the processing cost of monitoring.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadAccount {
    total: SimDuration,
    charges: u64,
}

impl OverheadAccount {
    /// A fresh, empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one probe firing.
    pub fn charge(&mut self, cost: SimDuration) {
        self.total += cost;
        self.charges += 1;
    }

    /// Total charged time.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Number of charges.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Overhead as a fraction of an execution window.
    ///
    /// Returns 0.0 for an empty window.
    pub fn fraction_of(&self, window: SimDuration) -> f64 {
        self.total.ratio(window)
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &OverheadAccount) {
        self.total += other.total;
        self.charges += other.charges;
    }
}

/// A probe-effect budget: the largest fraction of baseline runtime an
/// instrumentation layer is allowed to add (paper Sect. 4.1: observe
/// "without degrading performance").
///
/// E9 budgets the *simulated* probe cost against virtual time; this type
/// budgets *real* wall-clock overhead — the telemetry experiment (E15)
/// times a reference scenario with recording off and on and judges the
/// difference against the budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeBudget {
    /// Maximum tolerated `(instrumented - baseline) / baseline`.
    pub max_overhead_fraction: f64,
}

impl ProbeBudget {
    /// The default telemetry budget: 5% of baseline runtime.
    pub const DEFAULT_FRACTION: f64 = 0.05;

    /// A budget tolerating `max_overhead_fraction` relative overhead.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is not positive and finite.
    pub fn new(max_overhead_fraction: f64) -> Self {
        assert!(
            max_overhead_fraction > 0.0 && max_overhead_fraction.is_finite(),
            "budget fraction must be positive and finite"
        );
        ProbeBudget {
            max_overhead_fraction,
        }
    }

    /// The default 5% telemetry budget.
    pub fn default_telemetry() -> Self {
        ProbeBudget::new(Self::DEFAULT_FRACTION)
    }

    /// Judges a measured (baseline, instrumented) wall-clock pair.
    ///
    /// An instrumented run *faster* than baseline (measurement noise)
    /// reports a negative overhead fraction and is trivially within
    /// budget. A zero baseline is judged within budget only if the
    /// instrumented time is also zero.
    pub fn judge(&self, baseline_ns: u64, instrumented_ns: u64) -> BudgetVerdict {
        let overhead_fraction = if baseline_ns == 0 {
            if instrumented_ns == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (instrumented_ns as f64 - baseline_ns as f64) / baseline_ns as f64
        };
        BudgetVerdict {
            baseline_ns,
            instrumented_ns,
            overhead_fraction,
            max_overhead_fraction: self.max_overhead_fraction,
            within_budget: overhead_fraction <= self.max_overhead_fraction,
        }
    }
}

/// The outcome of judging one measurement pair against a [`ProbeBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetVerdict {
    /// Wall-clock nanoseconds with instrumentation off.
    pub baseline_ns: u64,
    /// Wall-clock nanoseconds with instrumentation on.
    pub instrumented_ns: u64,
    /// `(instrumented - baseline) / baseline`; negative means the
    /// instrumented run was faster (noise).
    pub overhead_fraction: f64,
    /// The budget the pair was judged against.
    pub max_overhead_fraction: f64,
    /// True iff `overhead_fraction <= max_overhead_fraction`.
    pub within_budget: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut acc = OverheadAccount::new();
        acc.charge(SimDuration::from_nanos(100));
        acc.charge(SimDuration::from_nanos(50));
        assert_eq!(acc.total(), SimDuration::from_nanos(150));
        assert_eq!(acc.charges(), 2);
    }

    #[test]
    fn fraction() {
        let mut acc = OverheadAccount::new();
        acc.charge(SimDuration::from_millis(1));
        assert!((acc.fraction_of(SimDuration::from_millis(100)) - 0.01).abs() < 1e-12);
        assert_eq!(acc.fraction_of(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_adds_both_fields() {
        let mut a = OverheadAccount::new();
        a.charge(SimDuration::from_nanos(10));
        let mut b = OverheadAccount::new();
        b.charge(SimDuration::from_nanos(5));
        b.charge(SimDuration::from_nanos(5));
        a.merge(&b);
        assert_eq!(a.total(), SimDuration::from_nanos(20));
        assert_eq!(a.charges(), 3);
    }

    #[test]
    fn budget_judges_both_sides() {
        let budget = ProbeBudget::default_telemetry();
        let ok = budget.judge(1_000_000, 1_040_000);
        assert!(ok.within_budget);
        assert!((ok.overhead_fraction - 0.04).abs() < 1e-9);
        let over = budget.judge(1_000_000, 1_060_000);
        assert!(!over.within_budget);
        let noise = budget.judge(1_000_000, 990_000);
        assert!(noise.within_budget);
        assert!(noise.overhead_fraction < 0.0);
    }

    #[test]
    fn budget_zero_baseline() {
        let budget = ProbeBudget::new(0.1);
        assert!(budget.judge(0, 0).within_budget);
        assert!(!budget.judge(0, 1).within_budget);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn budget_rejects_nonpositive_fraction() {
        let _ = ProbeBudget::new(0.0);
    }
}
