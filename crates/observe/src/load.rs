//! Sliding-window resource-load observation.
//!
//! The paper lists "load of processors and busses" among the observations a
//! TV awareness monitor needs (Sect. 3). A [`LoadProbe`] ingests busy/idle
//! samples and answers windowed utilization queries.

use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A sample: utilization fraction over the interval since the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LoadSample {
    time: SimTime,
    fraction: f64,
}

/// Sliding-window load average over a fixed horizon.
///
/// ```
/// use observe::LoadProbe;
/// use simkit::{SimDuration, SimTime};
///
/// let mut probe = LoadProbe::new("cpu0", SimDuration::from_millis(100));
/// probe.sample(SimTime::from_millis(10), 0.2);
/// probe.sample(SimTime::from_millis(20), 0.8);
/// assert!((probe.average() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LoadProbe {
    name: String,
    window: SimDuration,
    samples: VecDeque<LoadSample>,
    peak: f64,
}

impl LoadProbe {
    /// Creates a probe averaging over `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(name: impl Into<String>, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        LoadProbe {
            name: name.into(),
            window,
            samples: VecDeque::new(),
            peak: 0.0,
        }
    }

    /// The monitored resource's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ingests a utilization sample at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or not finite.
    pub fn sample(&mut self, time: SimTime, fraction: f64) {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "load fraction must be in [0,1], got {fraction}"
        );
        self.peak = self.peak.max(fraction);
        self.samples.push_back(LoadSample { time, fraction });
        let cutoff = time - self.window;
        while let Some(front) = self.samples.front() {
            if front.time < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Mean of the samples currently in the window (0.0 when empty).
    pub fn average(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.fraction).sum::<f64>() / self.samples.len() as f64
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<f64> {
        self.samples.back().map(|s| s.fraction)
    }

    /// Highest sample ever seen (not windowed).
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// True when the windowed average exceeds `threshold` — the overload
    /// condition that triggers load-balancing recovery (Sect. 4.5).
    pub fn is_overloaded(&self, threshold: f64) -> bool {
        self.average() > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_window() {
        let mut p = LoadProbe::new("cpu", SimDuration::from_millis(100));
        p.sample(SimTime::from_millis(10), 0.4);
        p.sample(SimTime::from_millis(20), 0.6);
        assert!((p.average() - 0.5).abs() < 1e-12);
        assert_eq!(p.latest(), Some(0.6));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn old_samples_fall_out() {
        let mut p = LoadProbe::new("cpu", SimDuration::from_millis(50));
        p.sample(SimTime::from_millis(0), 1.0);
        p.sample(SimTime::from_millis(100), 0.0);
        // First sample is older than 100-50=50 cutoff.
        assert_eq!(p.len(), 1);
        assert_eq!(p.average(), 0.0);
        assert_eq!(p.peak(), 1.0);
    }

    #[test]
    fn empty_average_is_zero() {
        let p = LoadProbe::new("cpu", SimDuration::from_millis(10));
        assert_eq!(p.average(), 0.0);
        assert!(p.is_empty());
        assert_eq!(p.latest(), None);
    }

    #[test]
    fn overload_detection() {
        let mut p = LoadProbe::new("cpu", SimDuration::from_millis(100));
        p.sample(SimTime::from_millis(1), 0.95);
        assert!(p.is_overloaded(0.9));
        assert!(!p.is_overloaded(0.99));
    }

    #[test]
    #[should_panic(expected = "load fraction")]
    fn rejects_out_of_range() {
        let mut p = LoadProbe::new("cpu", SimDuration::from_millis(10));
        p.sample(SimTime::ZERO, 1.5);
    }
}
