//! Value range checking.
//!
//! Hardware-supported range checking is one of the observation/detection
//! mechanisms the paper exploits (Sect. 4.1, 4.3): a monitored value leaving
//! its legal interval is an error symptom.

use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::fmt;

/// A detected range violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeViolation {
    /// The probe's value name.
    pub name: String,
    /// When it was observed.
    pub time: SimTime,
    /// The offending value.
    pub value: f64,
    /// The legal interval.
    pub bounds: (f64, f64),
}

impl fmt::Display for RangeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} outside [{}, {}] at {}",
            self.name, self.value, self.bounds.0, self.bounds.1, self.time
        )
    }
}

/// Checks a named value against a legal interval.
///
/// ```
/// use observe::RangeProbe;
/// use simkit::SimTime;
///
/// let mut probe = RangeProbe::new("volume", 0.0, 100.0);
/// assert!(probe.check(SimTime::ZERO, 50.0).is_none());
/// assert!(probe.check(SimTime::ZERO, 130.0).is_some());
/// assert_eq!(probe.violations(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeProbe {
    name: String,
    min: f64,
    max: f64,
    checks: u64,
    violations: u64,
}

impl RangeProbe {
    /// Creates a probe with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is NaN.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Self {
        assert!(!min.is_nan() && !max.is_nan(), "bounds must not be NaN");
        assert!(min <= max, "min must not exceed max");
        RangeProbe {
            name: name.into(),
            min,
            max,
            checks: 0,
            violations: 0,
        }
    }

    /// The probe's value name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The legal interval.
    pub fn bounds(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Checks a sample; returns a violation record if out of bounds.
    ///
    /// NaN samples always violate.
    pub fn check(&mut self, time: SimTime, value: f64) -> Option<RangeViolation> {
        self.checks += 1;
        let ok = value >= self.min && value <= self.max;
        if ok {
            None
        } else {
            self.violations += 1;
            Some(RangeViolation {
                name: self.name.clone(),
                time,
                value,
                bounds: (self.min, self.max),
            })
        }
    }

    /// Samples checked so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations seen so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_passes() {
        let mut p = RangeProbe::new("x", -1.0, 1.0);
        assert!(p.check(SimTime::ZERO, 0.0).is_none());
        assert!(p.check(SimTime::ZERO, -1.0).is_none());
        assert!(p.check(SimTime::ZERO, 1.0).is_none());
        assert_eq!(p.checks(), 3);
        assert_eq!(p.violations(), 0);
    }

    #[test]
    fn out_of_range_reports() {
        let mut p = RangeProbe::new("x", 0.0, 10.0);
        let v = p.check(SimTime::from_millis(3), 12.0).unwrap();
        assert_eq!(v.value, 12.0);
        assert_eq!(v.bounds, (0.0, 10.0));
        assert_eq!(p.violations(), 1);
        assert!(v.to_string().contains("outside"));
    }

    #[test]
    fn nan_always_violates() {
        let mut p = RangeProbe::new("x", 0.0, 1.0);
        assert!(p.check(SimTime::ZERO, f64::NAN).is_some());
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_bounds_panic() {
        let _ = RangeProbe::new("x", 2.0, 1.0);
    }
}
