//! # observe — the observation layer
//!
//! Reproduces the observation work of the Trader project (paper Sect. 4.1):
//! to give a system run-time awareness you must first *see* what it does.
//! The paper exploits on-chip debug/trace hardware and aspect-oriented code
//! instrumentation (AspectKoala on the Koala component model); this crate
//! provides the equivalent software layer for the simulated systems under
//! observation:
//!
//! * typed [`Observation`]s — key presses, component modes, numeric values,
//!   function calls, resource loads, outputs;
//! * a [`ProbeRegistry`] with per-probe enable/disable and overhead
//!   accounting (high-volume products cannot afford heavy monitoring);
//! * [`RangeProbe`] value range checking;
//! * [`CallStackRecorder`] call/return tracking (the paper monitors call
//!   stacks: functions, parameters, result values);
//! * [`LoadProbe`] sliding-window processor/bus load;
//! * [`BlockCoverage`] basic-block hit recording — the raw material for
//!   spectrum-based diagnosis (Sect. 4.4);
//! * a bounded [`RingBuffer`] for trace retention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callstack;
pub mod coverage;
pub mod load;
pub mod observation;
pub mod overhead;
pub mod probe;
pub mod range;
pub mod ring;

pub use callstack::CallStackRecorder;
pub use coverage::{BlockCoverage, BlockSnapshot};
pub use load::LoadProbe;
pub use observation::{ObsValue, Observation, ObservationKind};
pub use overhead::{BudgetVerdict, OverheadAccount, ProbeBudget};
pub use probe::{ProbeId, ProbeRegistry};
pub use range::{RangeProbe, RangeViolation};
pub use ring::RingBuffer;
