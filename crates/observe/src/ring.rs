//! A bounded ring buffer for trace retention.

use std::collections::VecDeque;

/// A fixed-capacity FIFO that evicts its oldest element when full —
/// the retention model of on-chip trace buffers.
///
/// ```
/// use observe::RingBuffer;
/// let mut ring = RingBuffer::new(2);
/// ring.push(1);
/// ring.push(2);
/// ring.push(3);
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(ring.evicted(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
    evicted: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring retaining at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            evicted: 0,
        }
    }

    /// Appends an item, evicting the oldest when at capacity.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.evicted += 1;
        }
        self.items.push_back(item);
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Removes and returns all retained items, oldest first.
    pub fn drain(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// The most recent item, if any.
    pub fn latest(&self) -> Option<&T> {
        self.items.back()
    }
}

impl<T> Extend<T> for RingBuffer<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest() {
        let mut r = RingBuffer::new(3);
        r.extend(0..10);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.evicted(), 7);
        assert_eq!(r.latest(), Some(&9));
    }

    #[test]
    fn drain_empties() {
        let mut r = RingBuffer::new(4);
        r.extend([1, 2]);
        assert_eq!(r.drain(), vec![1, 2]);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: RingBuffer<u8> = RingBuffer::new(0);
    }
}
