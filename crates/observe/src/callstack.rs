//! Call-stack recording.
//!
//! The paper's hardware observation work monitors call stacks — functions,
//! parameters and result values — through the on-chip debug interface
//! (Sect. 4.1). This recorder tracks the same shape of data for simulated
//! code and flags overflow/underflow anomalies.

use serde::{Deserialize, Serialize};
use simkit::SimTime;

/// One recorded call event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallRecord {
    /// When the call happened.
    pub time: SimTime,
    /// Function name.
    pub function: String,
    /// Stack depth *after* the call.
    pub depth: usize,
}

/// Records function entry/exit and tracks stack depth.
///
/// ```
/// use observe::CallStackRecorder;
/// use simkit::SimTime;
///
/// let mut cs = CallStackRecorder::new(64);
/// cs.call(SimTime::ZERO, "main");
/// cs.call(SimTime::ZERO, "decode");
/// assert_eq!(cs.depth(), 2);
/// assert_eq!(cs.current(), Some("decode"));
/// cs.ret(SimTime::ZERO);
/// assert_eq!(cs.depth(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CallStackRecorder {
    stack: Vec<String>,
    max_depth: usize,
    deepest_seen: usize,
    overflows: u64,
    underflows: u64,
    history: Vec<CallRecord>,
    record_history: bool,
}

impl CallStackRecorder {
    /// Creates a recorder that flags depths beyond `max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is zero.
    pub fn new(max_depth: usize) -> Self {
        assert!(max_depth > 0, "max depth must be positive");
        CallStackRecorder {
            stack: Vec::new(),
            max_depth,
            deepest_seen: 0,
            overflows: 0,
            underflows: 0,
            history: Vec::new(),
            record_history: false,
        }
    }

    /// Enables per-call history recording (off by default: overhead).
    pub fn set_record_history(&mut self, on: bool) {
        self.record_history = on;
    }

    /// Records a function entry. Returns false when the call exceeded
    /// `max_depth` (a stack-overflow symptom).
    pub fn call(&mut self, time: SimTime, function: impl Into<String>) -> bool {
        let function = function.into();
        self.stack.push(function.clone());
        self.deepest_seen = self.deepest_seen.max(self.stack.len());
        if self.record_history {
            self.history.push(CallRecord {
                time,
                function,
                depth: self.stack.len(),
            });
        }
        if self.stack.len() > self.max_depth {
            self.overflows += 1;
            false
        } else {
            true
        }
    }

    /// Records a function return. Returns false on underflow (a return
    /// without a matching call — a corrupted-stack symptom).
    pub fn ret(&mut self, _time: SimTime) -> bool {
        if self.stack.pop().is_some() {
            true
        } else {
            self.underflows += 1;
            false
        }
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Function on top of the stack.
    pub fn current(&self) -> Option<&str> {
        self.stack.last().map(String::as_str)
    }

    /// Full current stack, outermost first.
    pub fn stack(&self) -> &[String] {
        &self.stack
    }

    /// Deepest depth ever seen.
    pub fn deepest_seen(&self) -> usize {
        self.deepest_seen
    }

    /// Overflow events (calls past `max_depth`).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Underflow events (returns with empty stack).
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Recorded history (empty unless enabled).
    pub fn history(&self) -> &[CallRecord] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_ret_balance() {
        let mut cs = CallStackRecorder::new(8);
        assert!(cs.call(SimTime::ZERO, "a"));
        assert!(cs.call(SimTime::ZERO, "b"));
        assert_eq!(cs.stack(), &["a".to_owned(), "b".to_owned()]);
        assert!(cs.ret(SimTime::ZERO));
        assert_eq!(cs.current(), Some("a"));
        assert!(cs.ret(SimTime::ZERO));
        assert_eq!(cs.depth(), 0);
        assert_eq!(cs.deepest_seen(), 2);
    }

    #[test]
    fn overflow_flagged() {
        let mut cs = CallStackRecorder::new(2);
        cs.call(SimTime::ZERO, "a");
        cs.call(SimTime::ZERO, "b");
        assert!(!cs.call(SimTime::ZERO, "c"));
        assert_eq!(cs.overflows(), 1);
    }

    #[test]
    fn underflow_flagged() {
        let mut cs = CallStackRecorder::new(2);
        assert!(!cs.ret(SimTime::ZERO));
        assert_eq!(cs.underflows(), 1);
    }

    #[test]
    fn history_only_when_enabled() {
        let mut cs = CallStackRecorder::new(4);
        cs.call(SimTime::ZERO, "quiet");
        assert!(cs.history().is_empty());
        cs.set_record_history(true);
        cs.call(SimTime::from_millis(1), "loud");
        assert_eq!(cs.history().len(), 1);
        assert_eq!(cs.history()[0].function, "loud");
        assert_eq!(cs.history()[0].depth, 2);
    }
}
