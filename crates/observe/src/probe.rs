//! The probe registry: named observation points with enable/disable and
//! overhead accounting.

use crate::observation::{Observation, ObservationKind};
use crate::overhead::OverheadAccount;
use crate::ring::RingBuffer;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of a registered probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProbeId(pub u32);

#[derive(Debug, Clone)]
struct ProbeInfo {
    name: String,
    enabled: bool,
    cost: SimDuration,
    fires: u64,
}

/// A registry of observation points.
///
/// Each probe has a per-firing cost, so the total monitoring overhead —
/// a first-order concern for high-volume products — is accounted for and
/// queryable (see [`ProbeRegistry::overhead`]).
///
/// ```
/// use observe::{ProbeRegistry, ObservationKind};
/// use simkit::{SimDuration, SimTime};
///
/// let mut reg = ProbeRegistry::new(1024);
/// let key_probe = reg.register("remote.keys", SimDuration::from_nanos(200));
/// reg.fire(key_probe, SimTime::ZERO, ObservationKind::KeyPress { key: "ok".into(), code: None });
/// assert_eq!(reg.observations().count(), 1);
/// assert_eq!(reg.fire_count(key_probe), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProbeRegistry {
    probes: BTreeMap<ProbeId, ProbeInfo>,
    next_id: u32,
    buffer: RingBuffer<Observation>,
    overhead: OverheadAccount,
}

impl ProbeRegistry {
    /// Creates a registry retaining at most `buffer_capacity` observations.
    pub fn new(buffer_capacity: usize) -> Self {
        ProbeRegistry {
            probes: BTreeMap::new(),
            next_id: 0,
            buffer: RingBuffer::new(buffer_capacity),
            overhead: OverheadAccount::default(),
        }
    }

    /// Registers a probe with a per-firing cost; returns its id.
    pub fn register(&mut self, name: impl Into<String>, cost: SimDuration) -> ProbeId {
        let id = ProbeId(self.next_id);
        self.next_id += 1;
        self.probes.insert(
            id,
            ProbeInfo {
                name: name.into(),
                enabled: true,
                cost,
                fires: 0,
            },
        );
        id
    }

    /// The probe's name.
    pub fn name(&self, id: ProbeId) -> Option<&str> {
        self.probes.get(&id).map(|p| p.name.as_str())
    }

    /// Enables or disables a probe. Disabled probes drop their firings and
    /// incur no cost (how a deployment trims monitoring overhead).
    pub fn set_enabled(&mut self, id: ProbeId, enabled: bool) {
        if let Some(p) = self.probes.get_mut(&id) {
            p.enabled = enabled;
        }
    }

    /// True if the probe exists and is enabled.
    pub fn is_enabled(&self, id: ProbeId) -> bool {
        self.probes.get(&id).is_some_and(|p| p.enabled)
    }

    /// Fires a probe: records an observation and accounts its cost.
    ///
    /// Returns true if the observation was recorded (probe exists and is
    /// enabled).
    pub fn fire(&mut self, id: ProbeId, now: SimTime, kind: ObservationKind) -> bool {
        let Some(p) = self.probes.get_mut(&id) else {
            return false;
        };
        if !p.enabled {
            return false;
        }
        p.fires += 1;
        self.overhead.charge(p.cost);
        let source = p.name.clone();
        self.buffer.push(Observation::new(now, source, kind));
        true
    }

    /// Number of times the probe fired while enabled.
    pub fn fire_count(&self, id: ProbeId) -> u64 {
        self.probes.get(&id).map_or(0, |p| p.fires)
    }

    /// Iterates over retained observations, oldest first.
    pub fn observations(&self) -> impl Iterator<Item = &Observation> {
        self.buffer.iter()
    }

    /// Removes and returns all retained observations.
    pub fn drain(&mut self) -> Vec<Observation> {
        self.buffer.drain()
    }

    /// Observations evicted because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.buffer.evicted()
    }

    /// Total monitoring overhead charged so far.
    pub fn overhead(&self) -> &OverheadAccount {
        &self.overhead
    }

    /// Number of registered probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when no probe is registered.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind() -> ObservationKind {
        ObservationKind::Value {
            name: "x".into(),
            value: 1.0,
        }
    }

    #[test]
    fn register_and_fire() {
        let mut reg = ProbeRegistry::new(16);
        let p = reg.register("p", SimDuration::from_nanos(100));
        assert_eq!(reg.name(p), Some("p"));
        assert!(reg.fire(p, SimTime::ZERO, kind()));
        assert_eq!(reg.fire_count(p), 1);
        assert_eq!(reg.observations().count(), 1);
        assert_eq!(reg.overhead().total(), SimDuration::from_nanos(100));
    }

    #[test]
    fn disabled_probe_is_free_and_silent() {
        let mut reg = ProbeRegistry::new(16);
        let p = reg.register("p", SimDuration::from_nanos(100));
        reg.set_enabled(p, false);
        assert!(!reg.is_enabled(p));
        assert!(!reg.fire(p, SimTime::ZERO, kind()));
        assert_eq!(reg.fire_count(p), 0);
        assert_eq!(reg.overhead().total(), SimDuration::ZERO);
        reg.set_enabled(p, true);
        assert!(reg.fire(p, SimTime::ZERO, kind()));
    }

    #[test]
    fn unknown_probe_rejected() {
        let mut reg = ProbeRegistry::new(16);
        assert!(!reg.fire(ProbeId(9), SimTime::ZERO, kind()));
        assert_eq!(reg.name(ProbeId(9)), None);
    }

    #[test]
    fn buffer_evicts_when_full() {
        let mut reg = ProbeRegistry::new(2);
        let p = reg.register("p", SimDuration::ZERO);
        for _ in 0..5 {
            reg.fire(p, SimTime::ZERO, kind());
        }
        assert_eq!(reg.observations().count(), 2);
        assert_eq!(reg.evicted(), 3);
        assert_eq!(reg.drain().len(), 2);
        assert_eq!(reg.observations().count(), 0);
    }

    #[test]
    fn ids_are_distinct() {
        let mut reg = ProbeRegistry::new(4);
        let a = reg.register("a", SimDuration::ZERO);
        let b = reg.register("b", SimDuration::ZERO);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }
}
