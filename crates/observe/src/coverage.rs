//! Basic-block coverage recording.
//!
//! The diagnosis technique of the paper (Sect. 4.4, after Zoeteweij et al.)
//! instruments the C code of the TV to record which of ~60 000 basic blocks
//! execute between consecutive key presses. [`BlockCoverage`] is that
//! instrumentation target: a dense bitset over block ids, snapshotted and
//! reset at every scenario step to form one row of the spectrum matrix.

use serde::{Deserialize, Serialize};

/// An immutable snapshot of which blocks were hit during one interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSnapshot {
    words: Vec<u64>,
    n_blocks: u32,
}

impl BlockSnapshot {
    /// True if `block` was hit.
    pub fn is_hit(&self, block: u32) -> bool {
        if block >= self.n_blocks {
            return false;
        }
        let (w, b) = (block / 64, block % 64);
        self.words[w as usize] & (1u64 << b) != 0
    }

    /// Number of blocks hit.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Total number of instrumented blocks.
    pub fn n_blocks(&self) -> u32 {
        self.n_blocks
    }

    /// Iterates over the hit block ids in ascending order.
    ///
    /// Built on [`BlockSnapshot::iter_hit_words`], so runtime is
    /// proportional to the number of *hits*, not the number of
    /// instrumented blocks — the sparse fast path that keeps folding a
    /// snapshot into columnar diagnosis counters cheap at million-block
    /// scale.
    pub fn iter_hits(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter_hit_words().flat_map(|(wi, word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    /// Iterates over `(word_index, word)` pairs for **nonzero** bitset
    /// words only, in ascending word order.
    ///
    /// This is the sparse step representation consumers fold over: a
    /// typical scenario step touches a small fraction of the blocks, so
    /// skipping zero words makes per-step accumulation O(hit words)
    /// instead of O(total words).
    pub fn iter_hit_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0)
            .map(|(i, &w)| (i, w))
    }

    /// Fraction of instrumented blocks hit, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        f64::from(self.count()) / f64::from(self.n_blocks)
    }

    /// Raw bitset words (used by the spectrum matrix without copying).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A mutable block-hit recorder.
///
/// ```
/// use observe::BlockCoverage;
///
/// let mut cov = BlockCoverage::new(1000);
/// cov.hit(3);
/// cov.hit(999);
/// let snap = cov.snapshot_and_reset();
/// assert_eq!(snap.count(), 2);
/// assert!(snap.is_hit(3));
/// assert!(!cov.any_hit()); // reset
/// ```
#[derive(Debug, Clone)]
pub struct BlockCoverage {
    words: Vec<u64>,
    n_blocks: u32,
    total_hits: u64,
}

impl BlockCoverage {
    /// Creates coverage over `n_blocks` instrumented blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero.
    pub fn new(n_blocks: u32) -> Self {
        assert!(n_blocks > 0, "need at least one block");
        BlockCoverage {
            words: vec![0u64; n_blocks.div_ceil(64) as usize],
            n_blocks,
            total_hits: 0,
        }
    }

    /// Number of instrumented blocks.
    pub fn n_blocks(&self) -> u32 {
        self.n_blocks
    }

    /// Records execution of `block`. Out-of-range ids are ignored (robust
    /// against instrumentation drift).
    #[inline]
    pub fn hit(&mut self, block: u32) {
        if block < self.n_blocks {
            let (w, b) = (block / 64, block % 64);
            self.words[w as usize] |= 1u64 << b;
            self.total_hits += 1;
        }
    }

    /// True if `block` is currently marked hit.
    pub fn is_hit(&self, block: u32) -> bool {
        if block >= self.n_blocks {
            return false;
        }
        let (w, b) = (block / 64, block % 64);
        self.words[w as usize] & (1u64 << b) != 0
    }

    /// True if anything was hit since the last reset.
    pub fn any_hit(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of distinct blocks currently marked.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Total `hit` calls (including repeats) over the recorder's lifetime.
    pub fn total_hits(&self) -> u64 {
        self.total_hits
    }

    /// Snapshots the current hits and clears the recorder — one scenario
    /// step's spectrum row.
    pub fn snapshot_and_reset(&mut self) -> BlockSnapshot {
        let snap = BlockSnapshot {
            words: self.words.clone(),
            n_blocks: self.n_blocks,
        };
        self.words.iter_mut().for_each(|w| *w = 0);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_query() {
        let mut cov = BlockCoverage::new(130);
        cov.hit(0);
        cov.hit(64);
        cov.hit(129);
        assert!(cov.is_hit(0));
        assert!(cov.is_hit(64));
        assert!(cov.is_hit(129));
        assert!(!cov.is_hit(1));
        assert_eq!(cov.count(), 3);
    }

    #[test]
    fn repeat_hits_count_once_in_bitset() {
        let mut cov = BlockCoverage::new(10);
        cov.hit(5);
        cov.hit(5);
        assert_eq!(cov.count(), 1);
        assert_eq!(cov.total_hits(), 2);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut cov = BlockCoverage::new(10);
        cov.hit(10);
        cov.hit(u32::MAX);
        assert!(!cov.any_hit());
        assert!(!cov.is_hit(10));
    }

    #[test]
    fn snapshot_resets() {
        let mut cov = BlockCoverage::new(100);
        cov.hit(42);
        let snap = cov.snapshot_and_reset();
        assert!(snap.is_hit(42));
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.n_blocks(), 100);
        assert!(!cov.any_hit());
        assert_eq!(cov.count(), 0);
    }

    #[test]
    fn snapshot_iter_hits() {
        let mut cov = BlockCoverage::new(200);
        for b in [3u32, 64, 65, 199] {
            cov.hit(b);
        }
        let snap = cov.snapshot_and_reset();
        let hits: Vec<u32> = snap.iter_hits().collect();
        assert_eq!(hits, vec![3, 64, 65, 199]);
        assert!(!snap.is_hit(200));
    }

    #[test]
    fn hit_words_skip_zero_words() {
        let mut cov = BlockCoverage::new(64 * 10);
        cov.hit(0);
        cov.hit(64 * 9); // words 1..=8 stay zero
        let snap = cov.snapshot_and_reset();
        let words: Vec<(usize, u64)> = snap.iter_hit_words().collect();
        assert_eq!(words, vec![(0, 1), (9, 1)]);
        assert!((snap.density() - 2.0 / 640.0).abs() < 1e-12);
    }

    #[test]
    fn iter_hits_matches_per_bit_scan() {
        let mut cov = BlockCoverage::new(500);
        for b in (0..500).step_by(13) {
            cov.hit(b);
        }
        let snap = cov.snapshot_and_reset();
        let sparse: Vec<u32> = snap.iter_hits().collect();
        let dense: Vec<u32> = (0..500).filter(|b| snap.is_hit(*b)).collect();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn scale_to_sixty_thousand_blocks() {
        // The paper's experiment size: 60 000 blocks.
        let mut cov = BlockCoverage::new(60_000);
        for b in (0..60_000).step_by(7) {
            cov.hit(b);
        }
        let snap = cov.snapshot_and_reset();
        assert_eq!(snap.count(), 60_000 / 7 + 1);
        assert_eq!(snap.words().len(), 60_000usize.div_ceil(64));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = BlockCoverage::new(0);
    }
}
