//! Typed observations of a system under observation.

use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::fmt;

/// A value carried by an observation or output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObsValue {
    /// A numeric value.
    Num(f64),
    /// A symbolic value (e.g. a mode name).
    Text(String),
}

impl ObsValue {
    /// Numeric view, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            ObsValue::Num(x) => Some(*x),
            ObsValue::Text(_) => None,
        }
    }

    /// Text view, if symbolic.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ObsValue::Text(s) => Some(s),
            ObsValue::Num(_) => None,
        }
    }

    /// Overwrites `self` with `source`, reusing the existing `Text`
    /// buffer when both sides are symbolic — the allocation-free
    /// assignment the loop hot path uses to refresh its mirrored system
    /// state on every press (`Clone::clone_from` would still allocate a
    /// fresh `String` per update).
    pub fn assign_from(&mut self, source: &ObsValue) {
        match (self, source) {
            (ObsValue::Text(dst), ObsValue::Text(src)) => {
                dst.clear();
                dst.push_str(src);
            }
            (dst, src) => *dst = src.clone(),
        }
    }

    /// Numeric distance for comparator thresholds; text values are 0 when
    /// equal and +inf otherwise.
    pub fn distance(&self, other: &ObsValue) -> f64 {
        match (self, other) {
            (ObsValue::Num(a), ObsValue::Num(b)) => (a - b).abs(),
            (ObsValue::Text(a), ObsValue::Text(b)) if a == b => 0.0,
            _ => f64::INFINITY,
        }
    }
}

impl From<f64> for ObsValue {
    fn from(x: f64) -> Self {
        ObsValue::Num(x)
    }
}

impl From<i64> for ObsValue {
    fn from(x: i64) -> Self {
        ObsValue::Num(x as f64)
    }
}

impl From<&str> for ObsValue {
    fn from(s: &str) -> Self {
        ObsValue::Text(s.to_owned())
    }
}

impl From<String> for ObsValue {
    fn from(s: String) -> Self {
        ObsValue::Text(s)
    }
}

impl fmt::Display for ObsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsValue::Num(x) => write!(f, "{x}"),
            ObsValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// What was observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObservationKind {
    /// A user input (remote-control key press), with an optional key
    /// code (e.g. the digit pressed) that the specification model needs
    /// as event payload.
    KeyPress {
        /// Event name (e.g. `"vol_up"`, `"digit"`).
        key: String,
        /// Key code payload (e.g. the digit value).
        code: Option<i64>,
    },
    /// A component changed mode.
    Mode {
        /// Component name.
        component: String,
        /// New mode.
        mode: String,
    },
    /// A named internal value was sampled.
    Value {
        /// Value name.
        name: String,
        /// Sampled value.
        value: f64,
    },
    /// A function call was intercepted.
    Call {
        /// Function name.
        function: String,
    },
    /// A function returned.
    Return {
        /// Function name.
        function: String,
    },
    /// A resource load sample.
    Load {
        /// Resource name (e.g. `"cpu0"`).
        resource: String,
        /// Busy fraction in `[0,1]`.
        fraction: f64,
    },
    /// An externally visible output (what the user perceives).
    Output {
        /// Output name (e.g. `"volume"`, `"screen.mode"`).
        name: String,
        /// Output value.
        value: ObsValue,
    },
}

/// One observation: a kind, stamped with time and source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// When it was observed.
    pub time: SimTime,
    /// Which subsystem produced it.
    pub source: String,
    /// The observed fact.
    pub kind: ObservationKind,
}

impl Observation {
    /// Creates an observation.
    pub fn new(time: SimTime, source: impl Into<String>, kind: ObservationKind) -> Self {
        Observation {
            time,
            source: source.into(),
            kind,
        }
    }

    /// Convenience: the output name/value if this is an output observation.
    pub fn as_output(&self) -> Option<(&str, &ObsValue)> {
        match &self.kind {
            ObservationKind::Output { name, value } => Some((name, value)),
            _ => None,
        }
    }

    /// Convenience: the key (and code) if this is a key press.
    pub fn as_key_press(&self) -> Option<(&str, Option<i64>)> {
        match &self.kind {
            ObservationKind::KeyPress { key, code } => Some((key, *code)),
            _ => None,
        }
    }

    /// Builds a key-press observation.
    pub fn key_press(
        time: SimTime,
        source: impl Into<String>,
        key: impl Into<String>,
        code: Option<i64>,
    ) -> Self {
        Observation::new(
            time,
            source,
            ObservationKind::KeyPress {
                key: key.into(),
                code,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_views() {
        assert_eq!(ObsValue::from(2.5).as_num(), Some(2.5));
        assert_eq!(ObsValue::from("on").as_text(), Some("on"));
        assert_eq!(ObsValue::from(3i64), ObsValue::Num(3.0));
        assert_eq!(ObsValue::from("x".to_owned()).as_num(), None);
    }

    #[test]
    fn distances() {
        assert_eq!(ObsValue::Num(3.0).distance(&ObsValue::Num(5.0)), 2.0);
        assert_eq!(
            ObsValue::Text("a".into()).distance(&ObsValue::Text("a".into())),
            0.0
        );
        assert!(ObsValue::Text("a".into())
            .distance(&ObsValue::Num(0.0))
            .is_infinite());
    }

    #[test]
    fn accessors() {
        let obs = Observation::new(
            SimTime::ZERO,
            "tv",
            ObservationKind::Output {
                name: "volume".into(),
                value: ObsValue::Num(10.0),
            },
        );
        let (name, v) = obs.as_output().unwrap();
        assert_eq!(name, "volume");
        assert_eq!(v.as_num(), Some(10.0));
        assert!(obs.as_key_press().is_none());

        let key = Observation::key_press(SimTime::ZERO, "rc", "ok", None);
        assert_eq!(key.as_key_press(), Some(("ok", None)));
        let digit = Observation::key_press(SimTime::ZERO, "rc", "digit", Some(7));
        assert_eq!(digit.as_key_press(), Some(("digit", Some(7))));
    }

    #[test]
    fn display() {
        assert_eq!(ObsValue::Num(1.5).to_string(), "1.5");
        assert_eq!(ObsValue::Text("hd".into()).to_string(), "hd");
    }
}
