//! Property-based tests of the observation layer's data structures.

use observe::{BlockCoverage, LoadProbe, RangeProbe, RingBuffer};
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};

proptest! {
    /// A ring buffer always retains exactly the newest min(n, cap)
    /// items, in order.
    #[test]
    fn ring_keeps_newest(cap in 1usize..50, items in prop::collection::vec(any::<u32>(), 0..200)) {
        let mut ring = RingBuffer::new(cap);
        ring.extend(items.iter().copied());
        let kept: Vec<u32> = ring.iter().copied().collect();
        let expected: Vec<u32> = items
            .iter()
            .skip(items.len().saturating_sub(cap))
            .copied()
            .collect();
        prop_assert_eq!(kept, expected);
        prop_assert_eq!(ring.evicted() as usize, items.len().saturating_sub(cap));
    }

    /// Coverage snapshot reflects exactly the distinct in-range hits, and
    /// the reset leaves nothing behind.
    #[test]
    fn coverage_snapshot_exact(hits in prop::collection::vec(0u32..2_000, 0..300)) {
        let mut cov = BlockCoverage::new(1_000);
        for &h in &hits {
            cov.hit(h);
        }
        let snap = cov.snapshot_and_reset();
        let mut distinct: Vec<u32> = hits.iter().copied().filter(|h| *h < 1_000).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(snap.count() as usize, distinct.len());
        prop_assert_eq!(snap.iter_hits().collect::<Vec<_>>(), distinct);
        prop_assert!(!cov.any_hit());
    }

    /// Range probe verdicts match the arithmetic definition exactly.
    #[test]
    fn range_probe_exact(lo in -100.0f64..0.0, hi in 0.0f64..100.0,
                         samples in prop::collection::vec(-200.0f64..200.0, 0..100)) {
        let mut probe = RangeProbe::new("x", lo, hi);
        let mut expected_violations = 0u64;
        for (i, &s) in samples.iter().enumerate() {
            let v = probe.check(SimTime::from_nanos(i as u64), s);
            let out_of_range = !(lo..=hi).contains(&s);
            prop_assert_eq!(v.is_some(), out_of_range);
            if out_of_range {
                expected_violations += 1;
            }
        }
        prop_assert_eq!(probe.violations(), expected_violations);
        prop_assert_eq!(probe.checks() as usize, samples.len());
    }

    /// The sliding-window average always lies within [0, 1] and within
    /// the min/max of the retained samples.
    #[test]
    fn load_average_bounded(samples in prop::collection::vec((0u64..1_000, 0.0f64..=1.0), 1..100)) {
        let mut probe = LoadProbe::new("cpu", SimDuration::from_millis(100));
        let mut t = SimTime::ZERO;
        for (gap, frac) in samples {
            t += SimDuration::from_millis(gap);
            probe.sample(t, frac);
            let avg = probe.average();
            prop_assert!((0.0..=1.0).contains(&avg));
            prop_assert!(avg <= probe.peak() + 1e-12);
        }
    }
}
