//! The flight recorder: a fixed-capacity, overwrite-oldest event ring.
//!
//! Modeled on the bounded in-memory recorders used for replay debugging
//! of embedded control loops (Sundmark et al.): recording must be O(1)
//! with no allocation after warm-up, and when something goes wrong the
//! *tail* — the newest events — is the forensic evidence. The ring
//! therefore overwrites the oldest record when full and counts how many
//! were lost, so a dump is honest about its own horizon.

use crate::event::{Event, EventKind, Stamp};

/// Fixed-capacity, overwrite-oldest ring of [`Event`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    /// Storage; grows up to `capacity` then stays fixed.
    buf: Vec<Event>,
    /// Next slot to write once `buf` is full (oldest record).
    head: usize,
    capacity: usize,
    /// Events overwritten since creation (or the last [`Self::clear`]).
    overwritten: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder capacity must be > 0");
        FlightRecorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            overwritten: 0,
        }
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    pub fn record(&mut self, stamp: Stamp, name: &'static str, kind: EventKind) {
        let event = Event { stamp, name, kind };
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events lost to overwriting since creation or the last clear.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// The newest `n` events, oldest-first.
    pub fn tail(&self, n: usize) -> Vec<&Event> {
        let skip = self.buf.len().saturating_sub(n);
        self.iter().skip(skip).collect()
    }

    /// Renders the whole ring as JSONL, one event per line, oldest
    /// first, with a trailing newline (empty string when empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.iter() {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Renders the newest `n` events as JSONL (oldest-first).
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for event in self.tail(n) {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Drops all events and resets the overwrite counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.overwritten = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn counter_at(ns: u64, delta: i64) -> (Stamp, EventKind) {
        (
            Stamp::virtual_at(SimTime::from_nanos(ns)),
            EventKind::Counter { delta },
        )
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = FlightRecorder::new(3);
        for i in 0..5u64 {
            let (stamp, kind) = counter_at(i, i as i64);
            ring.record(stamp, "t.ring.tick", kind);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        let kept: Vec<u64> = ring.iter().map(|e| e.stamp.nanos).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn tail_returns_newest_oldest_first() {
        let mut ring = FlightRecorder::new(4);
        for i in 0..7u64 {
            let (stamp, kind) = counter_at(i, 0);
            ring.record(stamp, "t.ring.tick", kind);
        }
        let tail: Vec<u64> = ring.tail(2).iter().map(|e| e.stamp.nanos).collect();
        assert_eq!(tail, vec![5, 6]);
        // Asking for more than is held returns everything.
        assert_eq!(ring.tail(100).len(), 4);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let mut ring = FlightRecorder::new(8);
        let (stamp, kind) = counter_at(1, 1);
        ring.record(stamp, "t.ring.tick", kind);
        ring.record(
            Stamp::virtual_at(SimTime::from_nanos(2)),
            "t.ring.span",
            EventKind::SpanEnter,
        );
        let dump = ring.to_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.ends_with('\n'));
        assert!(dump.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn clear_resets_everything() {
        let mut ring = FlightRecorder::new(2);
        for i in 0..5u64 {
            let (stamp, kind) = counter_at(i, 0);
            ring.record(stamp, "t.ring.tick", kind);
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.overwritten(), 0);
        assert_eq!(ring.to_jsonl(), "");
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
