//! Structured flight-recorder events.
//!
//! Every event is a fixed-shape record: a time stamp, a `&'static str`
//! name following the `crate.component.metric` convention, and a small
//! payload. Names are static so recording an event never allocates —
//! the recorder must stay cheap enough to leave on inside the awareness
//! loop (the probe-effect budget of E15).

use crate::json::Json;
use simkit::SimTime;

/// Which clock produced a stamp.
///
/// Virtual stamps come from the simulation kernel and are bit-identical
/// across same-seed runs; monotonic stamps come from the host clock and
/// are only meaningful within one process (used by measurement paths
/// that run outside simulated time, never inside the loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Simulated time (`simkit::SimTime` nanoseconds).
    Virtual,
    /// Host monotonic time, nanoseconds since the recorder was created.
    Monotonic,
}

impl Clock {
    /// Stable lowercase label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            Clock::Virtual => "virtual",
            Clock::Monotonic => "monotonic",
        }
    }
}

/// A time stamp: clock source plus nanoseconds on that clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Which clock `nanos` was read from.
    pub clock: Clock,
    /// Nanoseconds on that clock.
    pub nanos: u64,
}

impl Stamp {
    /// A virtual-time stamp at simulated instant `at`.
    pub fn virtual_at(at: SimTime) -> Stamp {
        Stamp {
            clock: Clock::Virtual,
            nanos: at.as_nanos(),
        }
    }

    /// A monotonic stamp `nanos` ns after the recorder's epoch.
    pub fn monotonic(nanos: u64) -> Stamp {
        Stamp {
            clock: Clock::Monotonic,
            nanos,
        }
    }
}

/// The payload of a flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span (named region of work) was entered.
    SpanEnter,
    /// The matching span was exited.
    SpanExit,
    /// A counter changed by `delta` (the running total lives in the
    /// metrics registry; the ring records the change for the timeline).
    Counter {
        /// Signed change applied to the counter.
        delta: i64,
    },
    /// A component moved between named states (e.g. degradation modes).
    Transition {
        /// State before the move.
        from: &'static str,
        /// State after the move.
        to: &'static str,
    },
    /// A gauge was set to an instantaneous value.
    Gauge {
        /// The observed value.
        value: i64,
    },
}

impl EventKind {
    /// Stable lowercase type tag used in JSONL output.
    pub fn type_label(&self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span_enter",
            EventKind::SpanExit => "span_exit",
            EventKind::Counter { .. } => "counter",
            EventKind::Transition { .. } => "transition",
            EventKind::Gauge { .. } => "gauge",
        }
    }
}

/// One flight-recorder record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// When the event happened.
    pub stamp: Stamp,
    /// Dotted `crate.component.metric` name.
    pub name: &'static str,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as a single-line JSON object.
    ///
    /// Field order is fixed (`t_ns`, `clock`, `type`, `name`, payload)
    /// so dumps are byte-identical across same-seed runs and friendly
    /// to `grep`.
    pub fn to_json(&self) -> Json {
        let base = Json::object()
            .field("t_ns", self.stamp.nanos.into())
            .field("clock", self.stamp.clock.label().into())
            .field("type", self.kind.type_label().into())
            .field("name", self.name.into());
        match &self.kind {
            EventKind::SpanEnter | EventKind::SpanExit => base,
            EventKind::Counter { delta } => base.field("delta", (*delta).into()),
            EventKind::Transition { from, to } => {
                base.field("from", (*from).into()).field("to", (*to).into())
            }
            EventKind::Gauge { value } => base.field("value", (*value).into()),
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_shapes_are_stable() {
        let e = Event {
            stamp: Stamp::virtual_at(SimTime::from_micros(12)),
            name: "awareness.comparator.errors",
            kind: EventKind::Counter { delta: 1 },
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t_ns":12000,"clock":"virtual","type":"counter","name":"awareness.comparator.errors","delta":1}"#
        );

        let e = Event {
            stamp: Stamp::monotonic(5),
            name: "awareness.supervisor.mode",
            kind: EventKind::Transition {
                from: "normal",
                to: "shedding",
            },
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t_ns":5,"clock":"monotonic","type":"transition","name":"awareness.supervisor.mode","from":"normal","to":"shedding"}"#
        );

        let e = Event {
            stamp: Stamp::virtual_at(SimTime::ZERO),
            name: "core.loop.step",
            kind: EventKind::SpanEnter,
        };
        assert_eq!(
            e.to_jsonl(),
            r#"{"t_ns":0,"clock":"virtual","type":"span_enter","name":"core.loop.step"}"#
        );
    }
}
