//! Metrics registry: named counters, gauges, and log-scale histograms.
//!
//! Readout must be deterministic — the registry backs the byte-identical
//! JSONL criterion of the determinism tests — so [`MetricsRegistry::to_json`]
//! emits every section sorted by the dotted `crate.component.metric`
//! name regardless of insertion order. Storage, however, is a small flat
//! vec probed with a pointer-identity fast path: names are `&'static
//! str` literals, so a recording site almost always passes the very same
//! slice and the lookup is a handful of pointer compares instead of a
//! tree walk over long shared-prefix strings — this is the probe-budget
//! hot path (E15). Histograms use fixed power-of-two buckets, which
//! makes merging two registries (E14's per-shard scorers) a plain
//! element-wise add: associative, commutative, and lossless with respect
//! to percentile readout.

use crate::json::Json;

/// Number of histogram buckets: one per power of two of a `u64`, plus a
/// dedicated zero bucket at index 0.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// nanoseconds).
///
/// Bucket `0` holds zeros; bucket `i >= 1` holds samples whose highest
/// set bit is `i - 1`, i.e. values in `[2^(i-1), 2^i)`. A percentile
/// readout is therefore exact to within one bucket — a factor-of-two
/// relative error bound — while `count`/`sum`/`min`/`max` stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Index of the bucket a sample lands in.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `[low, high]` bounds of the bucket holding the `q`-quantile
    /// sample (`0.0 <= q <= 1.0`), or `None` if empty.
    ///
    /// The true quantile value is guaranteed to lie within the returned
    /// bucket, so the relative error of either bound is at most one
    /// bucket (a factor of two).
    pub fn percentile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]: {q}");
        if self.count == 0 {
            return None;
        }
        // Rank of the quantile sample, 1-based, nearest-rank method.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Tighten with the exact extremes where they apply.
                let low = bucket_low(i).max(self.min);
                let high = bucket_high(i).min(self.max);
                return Some((low.min(high), high));
            }
        }
        unreachable!("rank {rank} beyond {} samples", self.count)
    }

    /// Point estimate for the `q`-quantile: the upper bound of its
    /// bucket (conservative for latency budgets), or `0` if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        self.percentile_bounds(q).map_or(0, |(_, high)| high)
    }

    /// Adds every sample of `other` into `self` (element-wise bucket
    /// add — associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Renders the summary readout (exact stats + bucketed percentiles).
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("count", self.count.into())
            .field("sum", self.sum.into())
            .field("min", self.min().map_or(Json::Null, Json::from))
            .field("max", self.max().map_or(Json::Null, Json::from))
            .field("p50", self.percentile(0.50).into())
            .field("p95", self.percentile(0.95).into())
            .field("p99", self.percentile(0.99).into())
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Plain value type — no interior mutability, `Send` — so threaded code
/// (E14's sharded scorer) keeps one registry per shard and merges after
/// join rather than contending on a lock inside the measured region.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, i64)>,
    gauges: Vec<(&'static str, i64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

/// Finds `name` in a flat metric table, or inserts a default entry.
/// Pointer identity (same literal, same call site) short-circuits the
/// content comparison.
fn slot<'a, T: Default>(entries: &'a mut Vec<(&'static str, T)>, name: &'static str) -> &'a mut T {
    let found = entries
        .iter()
        .position(|(n, _)| std::ptr::eq::<str>(*n, name) || *n == name);
    let index = match found {
        Some(i) => i,
        None => {
            entries.push((name, T::default()));
            entries.len() - 1
        }
    };
    &mut entries[index].1
}

/// Read-only lookup by content.
fn get<'a, T>(entries: &'a [(&'static str, T)], name: &str) -> Option<&'a T> {
    entries.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn incr(&mut self, name: &'static str, delta: i64) {
        *slot(&mut self.counters, name) += delta;
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> i64 {
        get(&self.counters, name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: i64) {
        *slot(&mut self.gauges, name) = value;
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        get(&self.gauges, name).copied()
    }

    /// Records `value` into the named histogram (created empty).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        slot(&mut self.histograms, name).record(value);
    }

    /// Read access to a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        get(&self.histograms, name)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Distinct metric names across all three sections.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Merges every metric of `other` into `self`: counters add, gauges
    /// take `other`'s value (last-writer-wins), histograms merge
    /// bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for &(name, delta) in &other.counters {
            *slot(&mut self.counters, name) += delta;
        }
        for &(name, value) in &other.gauges {
            *slot(&mut self.gauges, name) = value;
        }
        for (name, theirs) in &other.histograms {
            slot(&mut self.histograms, name).merge(theirs);
        }
    }

    /// Folds any number of registries into a fresh one, in iteration
    /// order. Counter and histogram merging is associative and
    /// commutative, so for those sections the result only depends on
    /// the *set* of inputs — this is how a campaign fleet combines its
    /// per-worker registries into one worker-count-invariant readout.
    /// (Gauges remain last-writer-wins, so gauge values follow the
    /// iteration order given here.)
    pub fn merge_all<'a>(
        registries: impl IntoIterator<Item = &'a MetricsRegistry>,
    ) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for registry in registries {
            merged.merge(registry);
        }
        merged
    }

    /// Renders the full readout as one JSON object with `counters`,
    /// `gauges`, and `histograms` sections, names sorted — byte-identical
    /// across runs that recorded the same values regardless of the order
    /// they recorded them in.
    pub fn to_json(&self) -> Json {
        fn sorted<'a, T>(entries: &'a [(&'static str, T)]) -> Vec<&'a (&'static str, T)> {
            let mut refs: Vec<_> = entries.iter().collect();
            refs.sort_by_key(|(n, _)| *n);
            refs
        }
        let mut counters = Json::object();
        for &&(name, value) in &sorted(&self.counters) {
            counters = counters.field(name, value.into());
        }
        let mut gauges = Json::object();
        for &&(name, value) in &sorted(&self.gauges) {
            gauges = gauges.field(name, value.into());
        }
        let mut histograms = Json::object();
        for (name, h) in sorted(&self.histograms) {
            histograms = histograms.field(name, h.to_json());
        }
        Json::object()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert!(bucket_low(i) <= bucket_high(i));
            if i > 0 {
                assert_eq!(bucket_index(bucket_low(i)), i);
                assert_eq!(bucket_index(bucket_high(i)), i);
            }
        }
    }

    #[test]
    fn exact_stats_and_bracketing_percentiles() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        // p50 of {10,20,30,40,1000} is 30 (nearest rank 3).
        let (low, high) = h.percentile_bounds(0.50).unwrap();
        assert!(low <= 30 && 30 <= high, "[{low},{high}]");
        // The bracket is at most one power-of-two bucket wide.
        assert!(high < 2 * low.max(1));
        // p99 lands in the max's bucket, clamped to the exact max.
        assert_eq!(h.percentile(0.99), 1000);
    }

    #[test]
    fn empty_histogram_readout() {
        let h = Histogram::new();
        assert_eq!(h.percentile_bounds(0.5), None);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [1u64, 5, 9, 100] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 700, 0] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.incr("a.b.c", 2);
        m.incr("a.b.c", 3);
        m.set_gauge("a.b.depth", 7);
        m.observe("a.b.ns", 128);
        assert_eq!(m.counter("a.b.c"), 5);
        assert_eq!(m.counter("never"), 0);
        assert_eq!(m.gauge("a.b.depth"), Some(7));
        assert_eq!(m.histogram("a.b.ns").unwrap().count(), 1);
    }

    #[test]
    fn merge_all_folds_in_order_and_is_order_insensitive_for_counters() {
        let mut a = MetricsRegistry::new();
        a.incr("presses", 3);
        a.observe("lat.ns", 10);
        let mut b = MetricsRegistry::new();
        b.incr("presses", 4);
        b.observe("lat.ns", 90);
        let forward = MetricsRegistry::merge_all([&a, &b]);
        let backward = MetricsRegistry::merge_all([&b, &a]);
        assert_eq!(forward.counter("presses"), 7);
        assert_eq!(
            forward.to_json().render(),
            backward.to_json().render(),
            "counter/histogram merging must be order-insensitive"
        );
        assert!(MetricsRegistry::merge_all([]).is_empty());
    }

    #[test]
    fn registry_merge_and_deterministic_readout() {
        let mut a = MetricsRegistry::new();
        a.incr("z.last", 1);
        a.observe("lat.ns", 4);
        let mut b = MetricsRegistry::new();
        b.incr("z.last", 2);
        b.incr("a.first", 1);
        b.set_gauge("g", 9);
        b.observe("lat.ns", 8);
        a.merge(&b);
        assert_eq!(a.counter("z.last"), 3);
        assert_eq!(a.histogram("lat.ns").unwrap().count(), 2);
        // Readout sorts names lexicographically regardless of insertion.
        let rendered = a.to_json().render();
        let first = rendered.find("a.first").unwrap();
        let last = rendered.find("z.last").unwrap();
        assert!(first < last, "{rendered}");
    }
}
