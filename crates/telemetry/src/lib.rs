//! Flight-recorder telemetry for the awareness loop.
//!
//! The paper's monitor must observe the system under observation without
//! disturbing it (lightweight observation, minimal probe effect) — and
//! this crate applies the same discipline to the monitor itself. It is
//! std-only (consistent with the offline shims policy) and provides:
//!
//! * [`FlightRecorder`] — a fixed-capacity, overwrite-oldest ring of
//!   structured [`Event`]s (span enter/exit, counter deltas, state
//!   transitions, gauges) stamped with simkit virtual time where
//!   available and host-monotonic time otherwise, drainable to
//!   deterministic JSONL for post-mortem forensics;
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   log-scale [`Histogram`]s with p50/p95/p99 readout, mergeable across
//!   threads for sharded workloads;
//! * [`Telemetry`] — the cheap cloneable handle threaded through the
//!   loop. A disabled handle ([`Telemetry::off`], also `Default`) is a
//!   `None` and every call is a branch on it, so instrumentation left in
//!   place costs next to nothing when telemetry is off — the property
//!   experiment E15 budgets (≤5% overhead with telemetry *on*).
//!
//! Event and metric names are `&'static str` in dotted
//! `crate.component.metric` form (e.g. `awareness.comparator.errors`),
//! so recording never allocates for names and dumps are `grep`-friendly.
//!
//! The handle is intentionally **not** `Send` (`Rc<RefCell<..>>`): the
//! awareness loop is single-threaded by design, and threaded code (the
//! sharded spectra scorer) instead keeps one plain [`MetricsRegistry`]
//! per shard and merges after join — see [`MetricsRegistry::merge`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use event::{Clock, Event, EventKind, Stamp};
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use recorder::FlightRecorder;

use simkit::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Everything a recording handle shares: the ring, the registry, and the
/// monotonic epoch.
#[derive(Debug)]
struct Hub {
    ring: FlightRecorder,
    metrics: MetricsRegistry,
    epoch: Instant,
}

/// Cheap cloneable telemetry handle; clones share one recorder/registry.
///
/// ```
/// use telemetry::Telemetry;
/// use simkit::SimTime;
///
/// let t = Telemetry::recording(64);
/// t.span_enter(SimTime::from_micros(1), "demo.work.step");
/// t.count(SimTime::from_micros(2), "demo.work.items", 3);
/// t.span_exit(SimTime::from_micros(5), "demo.work.step");
/// assert_eq!(t.counter("demo.work.items"), 3);
/// assert_eq!(t.events_jsonl().lines().count(), 3);
///
/// let off = Telemetry::off();
/// off.count(SimTime::ZERO, "demo.work.items", 1); // no-op, near-zero cost
/// assert!(!off.is_on());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    hub: Option<Rc<RefCell<Hub>>>,
}

impl Telemetry {
    /// A disabled handle: every recording call is a no-op.
    pub fn off() -> Telemetry {
        Telemetry { hub: None }
    }

    /// An enabled handle with a flight recorder holding `capacity`
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn recording(capacity: usize) -> Telemetry {
        Telemetry {
            hub: Some(Rc::new(RefCell::new(Hub {
                ring: FlightRecorder::new(capacity),
                metrics: MetricsRegistry::new(),
                epoch: Instant::now(),
            }))),
        }
    }

    /// True if this handle records anything.
    pub fn is_on(&self) -> bool {
        self.hub.is_some()
    }

    fn record(&self, stamp: Stamp, name: &'static str, kind: EventKind) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().ring.record(stamp, name, kind);
        }
    }

    // ---- virtual-time events (inside the simulated loop) ----

    /// Records entry into a named span at simulated instant `at`.
    pub fn span_enter(&self, at: SimTime, name: &'static str) {
        self.record(Stamp::virtual_at(at), name, EventKind::SpanEnter);
    }

    /// Records exit from a named span at simulated instant `at`.
    pub fn span_exit(&self, at: SimTime, name: &'static str) {
        self.record(Stamp::virtual_at(at), name, EventKind::SpanExit);
    }

    /// Adds `delta` to the named counter *and* records the change as a
    /// timeline event — for signal-level occurrences (errors, recoveries,
    /// retransmissions) where each instance matters forensically. For
    /// high-frequency counts use [`Telemetry::metric_incr`].
    pub fn count(&self, at: SimTime, name: &'static str, delta: i64) {
        if let Some(hub) = &self.hub {
            let mut hub = hub.borrow_mut();
            hub.metrics.incr(name, delta);
            hub.ring
                .record(Stamp::virtual_at(at), name, EventKind::Counter { delta });
        }
    }

    /// Records a state transition event (e.g. degradation modes).
    pub fn transition(
        &self,
        at: SimTime,
        name: &'static str,
        from: &'static str,
        to: &'static str,
    ) {
        self.record(
            Stamp::virtual_at(at),
            name,
            EventKind::Transition { from, to },
        );
    }

    /// Sets the named gauge and records the new value as an event.
    pub fn gauge(&self, at: SimTime, name: &'static str, value: i64) {
        if let Some(hub) = &self.hub {
            let mut hub = hub.borrow_mut();
            hub.metrics.set_gauge(name, value);
            hub.ring
                .record(Stamp::virtual_at(at), name, EventKind::Gauge { value });
        }
    }

    // ---- monotonic-time events (outside simulated time) ----

    /// Nanoseconds of host-monotonic time since this handle was created;
    /// `0` when disabled.
    pub fn mono_ns(&self) -> u64 {
        self.hub.as_ref().map_or(0, |hub| {
            u64::try_from(hub.borrow().epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }

    /// Span entry stamped with host-monotonic time — for phases that run
    /// outside any simulation clock (campaign setup, measurement loops).
    pub fn span_enter_mono(&self, name: &'static str) {
        if self.is_on() {
            self.record(Stamp::monotonic(self.mono_ns()), name, EventKind::SpanEnter);
        }
    }

    /// Span exit stamped with host-monotonic time.
    pub fn span_exit_mono(&self, name: &'static str) {
        if self.is_on() {
            self.record(Stamp::monotonic(self.mono_ns()), name, EventKind::SpanExit);
        }
    }

    // ---- metrics-only paths (no timeline event) ----

    /// Adds `delta` to the named counter without a timeline event — for
    /// high-frequency counts (comparisons, frames, messages) that would
    /// flood the ring.
    pub fn metric_incr(&self, name: &'static str, delta: i64) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().metrics.incr(name, delta);
        }
    }

    /// Sets the named gauge without a timeline event — for values
    /// re-sampled every pump (backlogs, depths) where only the latest
    /// matters.
    pub fn metric_gauge(&self, name: &'static str, value: i64) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().metrics.set_gauge(name, value);
        }
    }

    /// Records a sample (typically nanoseconds) into the named histogram.
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().metrics.observe(name, ns);
        }
    }

    /// Merges a detached registry (e.g. from a finished worker shard)
    /// into this handle's metrics.
    pub fn merge_registry(&self, other: &MetricsRegistry) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().metrics.merge(other);
        }
    }

    // ---- readout ----

    /// Current value of a counter; zero when disabled or never touched.
    pub fn counter(&self, name: &str) -> i64 {
        self.hub
            .as_ref()
            .map_or(0, |hub| hub.borrow().metrics.counter(name))
    }

    /// A copy of the metrics registry (empty when disabled).
    pub fn snapshot_metrics(&self) -> MetricsRegistry {
        self.hub
            .as_ref()
            .map_or_else(MetricsRegistry::new, |hub| hub.borrow().metrics.clone())
    }

    /// The metrics readout as a JSON object (deterministic field order).
    pub fn metrics_json(&self) -> Json {
        self.snapshot_metrics().to_json()
    }

    /// The whole event ring as JSONL, oldest first; empty when disabled.
    pub fn events_jsonl(&self) -> String {
        self.hub
            .as_ref()
            .map_or_else(String::new, |hub| hub.borrow().ring.to_jsonl())
    }

    /// The newest `n` events as JSONL; empty when disabled.
    pub fn tail_jsonl(&self, n: usize) -> String {
        self.hub
            .as_ref()
            .map_or_else(String::new, |hub| hub.borrow().ring.tail_jsonl(n))
    }

    /// Events lost to ring overwriting; zero when disabled.
    pub fn overwritten(&self) -> u64 {
        self.hub
            .as_ref()
            .map_or(0, |hub| hub.borrow().ring.overwritten())
    }

    /// Number of events currently in the ring; zero when disabled.
    pub fn events_len(&self) -> usize {
        self.hub.as_ref().map_or(0, |hub| hub.borrow().ring.len())
    }

    /// Clears the ring and the registry (keeps the monotonic epoch).
    pub fn clear(&self) {
        if let Some(hub) = &self.hub {
            let mut hub = hub.borrow_mut();
            hub.ring.clear();
            hub.metrics = MetricsRegistry::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let t = Telemetry::off();
        t.span_enter(SimTime::ZERO, "a.b.c");
        t.count(SimTime::ZERO, "a.b.c", 1);
        t.observe_ns("a.b.ns", 5);
        assert!(!t.is_on());
        assert_eq!(t.counter("a.b.c"), 0);
        assert_eq!(t.events_jsonl(), "");
        assert_eq!(t.events_len(), 0);
        assert_eq!(t.mono_ns(), 0);
    }

    #[test]
    fn default_is_off() {
        assert!(!Telemetry::default().is_on());
    }

    #[test]
    fn clones_share_one_hub() {
        let t = Telemetry::recording(16);
        let u = t.clone();
        u.count(SimTime::from_micros(1), "x.y.z", 2);
        t.count(SimTime::from_micros(2), "x.y.z", 3);
        assert_eq!(t.counter("x.y.z"), 5);
        assert_eq!(u.events_len(), 2);
    }

    #[test]
    fn count_hits_both_ring_and_registry() {
        let t = Telemetry::recording(8);
        t.count(SimTime::from_nanos(7), "a.b.hits", 1);
        t.metric_incr("a.b.quiet", 10);
        assert_eq!(t.counter("a.b.hits"), 1);
        assert_eq!(t.counter("a.b.quiet"), 10);
        let dump = t.events_jsonl();
        assert!(dump.contains("a.b.hits"));
        assert!(
            !dump.contains("a.b.quiet"),
            "metric_incr must skip the ring"
        );
    }

    #[test]
    fn transition_and_gauge_render() {
        let t = Telemetry::recording(8);
        t.transition(SimTime::from_nanos(1), "m.s.mode", "normal", "safe");
        t.gauge(SimTime::from_nanos(2), "m.s.depth", 4);
        let dump = t.events_jsonl();
        assert!(dump.contains(r#""from":"normal","to":"safe""#), "{dump}");
        assert!(dump.contains(r#""value":4"#), "{dump}");
        assert_eq!(t.snapshot_metrics().gauge("m.s.depth"), Some(4));
    }

    #[test]
    fn merge_registry_folds_shard_results() {
        let t = Telemetry::recording(4);
        t.observe_ns("shard.ns", 100);
        let mut shard = MetricsRegistry::new();
        shard.observe("shard.ns", 200);
        shard.incr("shard.items", 5);
        t.merge_registry(&shard);
        let m = t.snapshot_metrics();
        assert_eq!(m.histogram("shard.ns").unwrap().count(), 2);
        assert_eq!(m.counter("shard.items"), 5);
    }

    #[test]
    fn mono_span_uses_monotonic_clock() {
        let t = Telemetry::recording(4);
        t.span_enter_mono("host.phase.setup");
        t.span_exit_mono("host.phase.setup");
        let dump = t.events_jsonl();
        assert_eq!(dump.matches(r#""clock":"monotonic""#).count(), 2, "{dump}");
    }

    #[test]
    fn clear_empties_both_sides() {
        let t = Telemetry::recording(4);
        t.count(SimTime::ZERO, "a.b.c", 1);
        t.clear();
        assert_eq!(t.counter("a.b.c"), 0);
        assert_eq!(t.events_jsonl(), "");
    }
}
