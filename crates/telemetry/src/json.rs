//! Hand-rendered JSON: the workspace's single renderer.
//!
//! The workspace's serde is an offline no-op shim, so every machine-
//! readable artifact — `BENCH_*.json` reports, flight-recorder JSONL
//! dumps, metrics readouts — renders JSON by hand through this module
//! (extracted from `bench::json`, which now re-exports it, so escaping
//! logic exists exactly once). The value model is the minimal subset
//! those files need; rendering is deterministic (object keys keep
//! insertion order) so diffs between CI runs stay readable.

use std::io;
use std::path::{Path, PathBuf};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counters render without
    /// a decimal point).
    Int(i64),
    /// A float; non-finite values render as `null` per JSON's rules.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builder for an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds/overwrites a field (objects only; panics otherwise).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_owned(), value));
                }
                self
            }
            other => panic!("field() on non-object {other:?}"),
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// Escapes `s` as a JSON string (with quotes) into `out`.
///
/// Multi-byte characters pass through unescaped — JSON is UTF-8 — while
/// the two mandatory escapes (`"` and `\`), the common C0 shorthands,
/// and the remaining control characters get their `\uXXXX` forms.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The workspace root (two levels up from this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes `report` to `BENCH_<name>.json` at the workspace root and
/// returns the path.
pub fn write_bench_json(name: &str, report: &Json) -> io::Result<PathBuf> {
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, report.render() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report() {
        let report = Json::object()
            .field("experiment", "e14".into())
            .field(
                "cells",
                Json::Array(vec![Json::object()
                    .field("n_blocks", 60_000u32.into())
                    .field("score_ms", 1.5f64.into())]),
            )
            .field("ok", true.into());
        assert_eq!(
            report.render(),
            r#"{"experiment":"e14","cells":[{"n_blocks":60000,"score_ms":1.5}],"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let v = Json::object()
            .field("s", "a\"b\\c\nd".into())
            .field("inf", Json::Num(f64::INFINITY));
        assert_eq!(v.render(), r#"{"s":"a\"b\\c\nd","inf":null}"#);
    }

    #[test]
    fn escapes_all_control_characters() {
        // Every C0 control character renders as an escape, never raw.
        let all: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let rendered = Json::Str(all).render();
        assert!(rendered.chars().all(|c| (c as u32) >= 0x20), "{rendered}");
        // The shorthand escapes are used where JSON defines them.
        assert!(rendered.contains("\\n") && rendered.contains("\\t") && rendered.contains("\\r"));
        // The rest take the \u form, lowercase hex, zero-padded.
        assert!(rendered.contains("\\u0000") && rendered.contains("\\u001f"));
        assert_eq!(Json::Str("\u{7}".into()).render(), "\"\\u0007\"");
    }

    #[test]
    fn non_ascii_keys_and_values_pass_through() {
        // JSON is UTF-8: multi-byte keys/values need no escaping, and the
        // renderer must not mangle them.
        let v = Json::object()
            .field("métrique.λ", "überwachung 監視".into())
            .field("emoji", "🚦".into());
        assert_eq!(
            v.render(),
            r#"{"métrique.λ":"überwachung 監視","emoji":"🚦"}"#
        );
    }

    #[test]
    fn keys_with_quotes_and_controls_are_escaped() {
        let v = Json::object().field("a\"b\n", 1i64.into());
        assert_eq!(v.render(), "{\"a\\\"b\\n\":1}");
    }

    #[test]
    fn field_overwrites_existing_key() {
        let v = Json::object()
            .field("k", 1i64.into())
            .field("k", 2i64.into());
        assert_eq!(v.render(), r#"{"k":2}"#);
    }

    #[test]
    fn workspace_root_holds_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
