//! Hand-rendered JSON: the workspace's single renderer — and parser.
//!
//! The workspace's serde is an offline no-op shim, so every machine-
//! readable artifact — `BENCH_*.json` reports, flight-recorder JSONL
//! dumps, metrics readouts — renders JSON by hand through this module
//! (extracted from `bench::json`, which now re-exports it, so escaping
//! logic exists exactly once). The value model is the minimal subset
//! those files need; rendering is deterministic (object keys keep
//! insertion order) so diffs between CI runs stay readable.
//!
//! [`Json::parse`] is the inverse: a small recursive-descent parser
//! over the same value model, used wherever the workspace must *read*
//! its own artifacts back — the scorecard baseline
//! (`scorecard_baseline.json`) and the bench-trajectory aggregator
//! consume `BENCH_*.json` files through it. It accepts standard JSON
//! (no extensions) and round-trips everything [`Json::render`] emits.

use std::io;
use std::path::{Path, PathBuf};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counters render without
    /// a decimal point).
    Int(i64),
    /// A float; non-finite values render as `null` per JSON's rules.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builder for an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds/overwrites a field (objects only; panics otherwise).
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_owned(), value));
                }
                self
            }
            other => panic!("field() on non-object {other:?}"),
        }
    }

    /// Parses standard JSON text into a [`Json`] value.
    ///
    /// Errors carry the byte offset and a short description. Object keys
    /// keep their textual order (duplicates: last wins, matching
    /// [`Json::field`] semantics). Numbers without `.`/`e` that fit an
    /// `i64` become [`Json::Int`]; everything else numeric becomes
    /// [`Json::Num`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object (`None` for non-objects / missing).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, in textual order (empty for non-objects).
    pub fn entries(&self) -> &[(String, Json)] {
        match self {
            Json::Object(fields) => fields,
            _ => &[],
        }
    }

    /// The array's items (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            _ => &[],
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer value ([`Json::Int`] only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Non-negative integer value ([`Json::Int`] only).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// Numeric value: ints widen to `f64`, floats pass through.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i64::from(i))
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// Recursive-descent JSON parser state: a byte cursor over the input.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected '{}' at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut obj = Json::object();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj = obj.field(&key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(obj);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid; find the next one).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    if s.chars().any(|c| (c as u32) < 0x20) {
                        return Err(format!("raw control character at byte {start}"));
                    }
                    out.push_str(s);
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        let s = std::str::from_utf8(slice).map_err(|_| "non-ASCII \\u escape".to_owned())?;
        let unit = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Escapes `s` as a JSON string (with quotes) into `out`.
///
/// Multi-byte characters pass through unescaped — JSON is UTF-8 — while
/// the two mandatory escapes (`"` and `\`), the common C0 shorthands,
/// and the remaining control characters get their `\uXXXX` forms.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The workspace root (two levels up from this crate's manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes `report` to `BENCH_<name>.json` at the workspace root and
/// returns the path.
pub fn write_bench_json(name: &str, report: &Json) -> io::Result<PathBuf> {
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    std::fs::write(&path, report.render() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report() {
        let report = Json::object()
            .field("experiment", "e14".into())
            .field(
                "cells",
                Json::Array(vec![Json::object()
                    .field("n_blocks", 60_000u32.into())
                    .field("score_ms", 1.5f64.into())]),
            )
            .field("ok", true.into());
        assert_eq!(
            report.render(),
            r#"{"experiment":"e14","cells":[{"n_blocks":60000,"score_ms":1.5}],"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let v = Json::object()
            .field("s", "a\"b\\c\nd".into())
            .field("inf", Json::Num(f64::INFINITY));
        assert_eq!(v.render(), r#"{"s":"a\"b\\c\nd","inf":null}"#);
    }

    #[test]
    fn escapes_all_control_characters() {
        // Every C0 control character renders as an escape, never raw.
        let all: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let rendered = Json::Str(all).render();
        assert!(rendered.chars().all(|c| (c as u32) >= 0x20), "{rendered}");
        // The shorthand escapes are used where JSON defines them.
        assert!(rendered.contains("\\n") && rendered.contains("\\t") && rendered.contains("\\r"));
        // The rest take the \u form, lowercase hex, zero-padded.
        assert!(rendered.contains("\\u0000") && rendered.contains("\\u001f"));
        assert_eq!(Json::Str("\u{7}".into()).render(), "\"\\u0007\"");
    }

    #[test]
    fn non_ascii_keys_and_values_pass_through() {
        // JSON is UTF-8: multi-byte keys/values need no escaping, and the
        // renderer must not mangle them.
        let v = Json::object()
            .field("métrique.λ", "überwachung 監視".into())
            .field("emoji", "🚦".into());
        assert_eq!(
            v.render(),
            r#"{"métrique.λ":"überwachung 監視","emoji":"🚦"}"#
        );
    }

    #[test]
    fn keys_with_quotes_and_controls_are_escaped() {
        let v = Json::object().field("a\"b\n", 1i64.into());
        assert_eq!(v.render(), "{\"a\\\"b\\n\":1}");
    }

    #[test]
    fn field_overwrites_existing_key() {
        let v = Json::object()
            .field("k", 1i64.into())
            .field("k", 2i64.into());
        assert_eq!(v.render(), r#"{"k":2}"#);
    }

    #[test]
    fn workspace_root_holds_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let original = Json::object()
            .field("experiment", "e18".into())
            .field("rate", 0.75f64.into())
            .field("count", 42i64.into())
            .field("neg", (-7i64).into())
            .field("ok", true.into())
            .field("none", Json::Null)
            .field(
                "cells",
                Json::Array(vec![Json::object().field("s", "a\"b\\c\n\t✓".into())]),
            );
        let parsed = Json::parse(&original.render()).expect("round trip");
        assert_eq!(parsed, original);
        assert_eq!(parsed.render(), original.render());
    }

    #[test]
    fn parse_accessors_walk_the_tree() {
        let v = Json::parse(r#"{"a":{"b":[1,2.5,"x",true]},"n":-3}"#).unwrap();
        let items = v.get("a").unwrap().get("b").unwrap().items();
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[1].as_i64(), None);
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(items[3].as_bool(), Some(true));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.entries().len(), 2);
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_surrogates() {
        let v = Json::parse(" { \"k\" : [ \"\\u00e9\\u2713\" , \"\\ud83d\\ude00\" ] } ").unwrap();
        let items = v.get("k").unwrap().items();
        assert_eq!(items[0].as_str(), Some("é✓"));
        assert_eq!(items[1].as_str(), Some("😀"));
        assert_eq!(
            Json::parse(r#""\u0007""#).unwrap(),
            Json::Str("\u{7}".into())
        );
    }

    #[test]
    fn parse_duplicate_keys_last_wins() {
        let v = Json::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_i64(), Some(2));
        assert_eq!(v.entries().len(), 1);
    }

    #[test]
    fn parse_large_int_and_exponent_fall_back_to_float() {
        // i64::MAX + 1 overflows Int and falls back to Num.
        let v = Json::parse("9223372036854775808").unwrap();
        assert!(matches!(v, Json::Num(_)));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1 2]",
            "\"\\x\"",
            "\"unterminated",
            "1 2",
            "nan",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_reads_a_real_bench_report() {
        let rendered = r#"{"experiment":"e16_microreboot_mttr","quick":false,"min_mttr_ratio":73.39449541284404,"mttr_improvement_ok":true}"#;
        let v = Json::parse(rendered).unwrap();
        assert_eq!(
            v.get("experiment").unwrap().as_str(),
            Some("e16_microreboot_mttr")
        );
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(false));
        assert!(v.get("min_mttr_ratio").unwrap().as_f64().unwrap() > 73.0);
    }
}
