//! Property tests for the telemetry primitives: the ring recorder's
//! bounded-newest-N guarantee, histogram merge algebra, and the
//! one-bucket relative-error bound of percentile readout.

use proptest::prelude::*;
use simkit::SimTime;
use telemetry::{EventKind, FlightRecorder, Histogram, MetricsRegistry, Stamp};

/// Records `values[i]` as a counter event stamped `i` nanoseconds in.
fn fill(ring: &mut FlightRecorder, values: &[i64]) {
    for (i, &v) in values.iter().enumerate() {
        ring.record(
            Stamp::virtual_at(SimTime::from_nanos(i as u64)),
            "prop.ring.tick",
            EventKind::Counter { delta: v },
        );
    }
}

proptest! {
    /// The ring never exceeds its capacity and always holds exactly the
    /// newest `min(len, capacity)` events, in recording order.
    #[test]
    fn ring_keeps_newest_n_in_order(
        capacity in 1usize..40,
        values in prop::collection::vec(-1000i64..1000, 0..200)
    ) {
        let mut ring = FlightRecorder::new(capacity);
        fill(&mut ring, &values);

        prop_assert!(ring.len() <= ring.capacity());
        prop_assert_eq!(ring.len(), values.len().min(capacity));
        prop_assert_eq!(
            ring.overwritten(),
            values.len().saturating_sub(capacity) as u64
        );

        let kept: Vec<i64> = ring
            .iter()
            .map(|e| match e.kind {
                EventKind::Counter { delta } => delta,
                _ => unreachable!(),
            })
            .collect();
        let expected: Vec<i64> = values
            .iter()
            .copied()
            .skip(values.len().saturating_sub(capacity))
            .collect();
        prop_assert_eq!(kept, expected, "ring lost or reordered the newest events");

        // Stamps come out strictly increasing — oldest first.
        let stamps: Vec<u64> = ring.iter().map(|e| e.stamp.nanos).collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    /// `tail(n)` is always the suffix of the full iteration.
    #[test]
    fn ring_tail_is_suffix(
        capacity in 1usize..30,
        n in 0usize..50,
        values in prop::collection::vec(0i64..10, 0..100)
    ) {
        let mut ring = FlightRecorder::new(capacity);
        fill(&mut ring, &values);
        let all: Vec<u64> = ring.iter().map(|e| e.stamp.nanos).collect();
        let tail: Vec<u64> = ring.tail(n).iter().map(|e| e.stamp.nanos).collect();
        prop_assert_eq!(&all[all.len() - tail.len()..], &tail[..]);
        prop_assert_eq!(tail.len(), n.min(all.len()));
    }

    /// Histogram merge is associative and commutative, and merging
    /// equals having recorded every sample into one histogram.
    #[test]
    fn histogram_merge_is_associative_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..60),
        ys in prop::collection::vec(0u64..1_000_000, 0..60),
        zs in prop::collection::vec(0u64..1_000_000, 0..60)
    ) {
        let build = |samples: &[u64]| {
            let mut h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        // Commutative: a+b == b+a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merge equals single-pass recording.
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        prop_assert_eq!(&ab_c, &build(&all));
    }

    /// `percentile_bounds(q)` brackets the exact nearest-rank quantile,
    /// and the bracket is never wider than one log-scale bucket (a
    /// factor of two in the value).
    #[test]
    fn percentile_brackets_true_value_within_one_bucket(
        samples in prop::collection::vec(0u64..10_000_000, 1..120),
        q_millis in 0u64..=1000
    ) {
        let q = q_millis as f64 / 1000.0;
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }

        // Exact nearest-rank quantile from the sorted samples.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];

        let (low, high) = h.percentile_bounds(q).unwrap();
        prop_assert!(
            low <= exact && exact <= high,
            "exact {exact} outside bracket [{low},{high}] at q={q}"
        );
        // One power-of-two bucket: high < 2*max(low,1).
        prop_assert!(high <= 2u64.saturating_mul(low.max(1)), "[{low},{high}]");
        // The point estimate is the bracket's upper edge.
        prop_assert_eq!(h.percentile(q), high);
    }

    /// Registry merge matches recording everything into one registry,
    /// regardless of how samples are split across shards — the property
    /// the sharded E14 scorer relies on.
    #[test]
    fn registry_merge_matches_single_shard(
        samples in prop::collection::vec((0u8..3, 0u64..100_000), 0..120),
        shards in 1usize..6
    ) {
        const NAMES: [&str; 3] = ["a.shard.ns", "b.shard.items", "c.shard.depth"];
        let mut whole = MetricsRegistry::new();
        let mut parts: Vec<MetricsRegistry> = (0..shards).map(|_| MetricsRegistry::new()).collect();
        for (i, &(kind, value)) in samples.iter().enumerate() {
            let name = NAMES[kind as usize];
            let part = &mut parts[i % shards];
            match kind {
                0 => {
                    whole.observe(name, value);
                    part.observe(name, value);
                }
                1 => {
                    whole.incr(name, value as i64);
                    part.incr(name, value as i64);
                }
                _ => {
                    // Gauges are last-writer-wins; merge order is shard
                    // order, so only compare the counter/histogram parts
                    // by skipping gauges here.
                    whole.incr(name, 1);
                    part.incr(name, 1);
                }
            }
        }
        let mut merged = MetricsRegistry::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.to_json().render(), whole.to_json().render());
    }
}
