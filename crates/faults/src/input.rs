//! Input faults: bad signals and coding-standard deviations.

use serde::{Deserialize, Serialize};
use simkit::{SimRng, SimTime};
use std::collections::BTreeSet;

/// Independent per-item bit-error model (coding-standard deviations,
/// transmission errors).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitErrorModel {
    p: f64,
    seed: u64,
}

impl BitErrorModel {
    /// Creates a model corrupting each item with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        BitErrorModel { p, seed }
    }

    /// The corruption probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// The deterministically corrupted indices among `0..n`.
    pub fn corrupt_indices(&self, n: u64) -> BTreeSet<u64> {
        let mut rng = SimRng::seed(self.seed);
        (0..n).filter(|_| rng.chance(self.p)).collect()
    }
}

/// A piecewise-constant signal-quality profile over time.
///
/// Drives the pipeline's error-correction load in the overload
/// experiments: "intensive error correction on a bad input signal"
/// (paper Sect. 4.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalProfile {
    /// `(from, quality)` segments, sorted by `from`; quality holds until
    /// the next segment.
    segments: Vec<(SimTime, f64)>,
}

impl SignalProfile {
    /// A constant-quality profile.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `[0, 1]`.
    pub fn constant(quality: f64) -> Self {
        assert!((0.0..=1.0).contains(&quality));
        SignalProfile {
            segments: vec![(SimTime::ZERO, quality)],
        }
    }

    /// Appends a segment starting at `from` with the given quality.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not after the previous segment's start or the
    /// quality is out of range.
    pub fn then(mut self, from: SimTime, quality: f64) -> Self {
        assert!((0.0..=1.0).contains(&quality));
        assert!(
            self.segments.last().map(|(t, _)| *t < from).unwrap_or(true),
            "segments must be strictly increasing"
        );
        self.segments.push((from, quality));
        self
    }

    /// The signal quality at `now`.
    pub fn quality_at(&self, now: SimTime) -> f64 {
        self.segments
            .iter()
            .rev()
            .find(|(from, _)| *from <= now)
            .map(|(_, q)| *q)
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_errors_deterministic() {
        let m = BitErrorModel::new(0.2, 9);
        assert_eq!(m.corrupt_indices(500), m.corrupt_indices(500));
        let count = m.corrupt_indices(1000).len();
        assert!(count > 130 && count < 280, "count={count}");
        assert_eq!(m.probability(), 0.2);
    }

    #[test]
    fn zero_probability_corrupts_nothing() {
        assert!(BitErrorModel::new(0.0, 1).corrupt_indices(100).is_empty());
        assert_eq!(BitErrorModel::new(1.0, 1).corrupt_indices(100).len(), 100);
    }

    #[test]
    fn profile_steps() {
        let p = SignalProfile::constant(1.0)
            .then(SimTime::from_secs(10), 0.3)
            .then(SimTime::from_secs(20), 0.9);
        assert_eq!(p.quality_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(p.quality_at(SimTime::from_secs(10)), 0.3);
        assert_eq!(p.quality_at(SimTime::from_secs(19)), 0.3);
        assert_eq!(p.quality_at(SimTime::from_secs(25)), 0.9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_segments_rejected() {
        let _ = SignalProfile::constant(1.0)
            .then(SimTime::from_secs(10), 0.5)
            .then(SimTime::from_secs(5), 0.2);
    }
}
