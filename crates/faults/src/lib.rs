//! # faults — fault and stress injection
//!
//! The experiment side of dependability research: nothing can be measured
//! until faults are injected. This crate provides the generic machinery
//! the Trader-style experiments use:
//!
//! * [`Schedule`] / [`Injector`] — *when* faults activate (at a time,
//!   between times, after N events, periodically, probabilistically);
//! * [`CpuEater`], [`BusEater`], [`MemoryHog`] — the resource-stress
//!   faults of the TASS stress-testing approach (paper Sect. 4.7):
//!   "artificially takes away shared resources, such as CPU or bus
//!   bandwidth, to simulate the occurrence of errors or the addition of an
//!   additional resource user". The paper notes a software CPU eater "is
//!   already included in the current development software";
//! * [`SignalProfile`] / [`BitErrorModel`] — input faults: bad signal
//!   quality and coding-standard deviations (paper Sect. 2);
//! * [`deadlock::cycle_edges`] — circular-wait injection for the deadlock
//!   detector.
//!
//! TV-domain *programming* faults live with the SUO
//! (`tvsim::TvFault`); this crate schedules and activates them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod injector;
pub mod input;
pub mod resource;
pub mod schedule;

pub use injector::Injector;
pub use input::{BitErrorModel, SignalProfile};
pub use resource::{BusEater, CpuEater, MemoryHog};
pub use schedule::Schedule;
