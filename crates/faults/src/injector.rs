//! The injector: schedules × fault descriptors, with edge reporting.

use crate::schedule::Schedule;
use simkit::SimTime;

/// A fault-activation edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transition<F> {
    /// The fault became active.
    Activated(F),
    /// The fault became inactive.
    Deactivated(F),
}

/// Manages a set of scheduled faults of descriptor type `F` (e.g.
/// `tvsim::TvFault`), reporting activation edges so the harness can apply
/// and clear them on the SUO.
///
/// ```
/// use faults::{Injector, Schedule};
/// use simkit::SimTime;
///
/// let mut inj: Injector<&str> = Injector::new();
/// inj.add(Schedule::From { at: SimTime::from_millis(10) }, "teletext-fault");
/// assert!(inj.poll(SimTime::from_millis(5), 0).is_empty());
/// let edges = inj.poll(SimTime::from_millis(10), 0);
/// assert_eq!(edges.len(), 1);
/// assert!(inj.active().contains(&"teletext-fault"));
/// ```
#[derive(Debug, Clone)]
pub struct Injector<F> {
    entries: Vec<(Schedule, F, bool)>,
}

impl<F> Default for Injector<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F> Injector<F> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            entries: Vec::new(),
        }
    }
}

impl<F: Clone + PartialEq> Injector<F> {
    /// Adds a scheduled fault.
    pub fn add(&mut self, schedule: Schedule, fault: F) {
        self.entries.push((schedule, fault, false));
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Currently active fault descriptors.
    pub fn active(&self) -> Vec<F> {
        self.entries
            .iter()
            .filter(|(_, _, active)| *active)
            .map(|(_, f, _)| f.clone())
            .collect()
    }

    /// Re-evaluates schedules at `(now, events)`; returns the edges.
    pub fn poll(&mut self, now: SimTime, events: u64) -> Vec<Transition<F>> {
        let mut edges = Vec::new();
        for (schedule, fault, active) in &mut self.entries {
            let want = schedule.is_active(now, events);
            if want != *active {
                *active = want;
                edges.push(if want {
                    Transition::Activated(fault.clone())
                } else {
                    Transition::Deactivated(fault.clone())
                });
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimDuration;

    #[test]
    fn edges_fire_once_per_change() {
        let mut inj: Injector<u32> = Injector::new();
        inj.add(
            Schedule::Between {
                from: SimTime::from_millis(10),
                to: SimTime::from_millis(20),
            },
            7,
        );
        assert!(inj.poll(SimTime::from_millis(5), 0).is_empty());
        assert_eq!(
            inj.poll(SimTime::from_millis(12), 0),
            vec![Transition::Activated(7)]
        );
        assert!(inj.poll(SimTime::from_millis(15), 0).is_empty());
        assert_eq!(
            inj.poll(SimTime::from_millis(25), 0),
            vec![Transition::Deactivated(7)]
        );
        assert!(inj.active().is_empty());
    }

    #[test]
    fn multiple_faults_tracked_independently() {
        let mut inj: Injector<&str> = Injector::new();
        inj.add(Schedule::Always, "a");
        inj.add(Schedule::Never, "b");
        inj.add(
            Schedule::Periodic {
                period: SimDuration::from_millis(10),
                duty: SimDuration::from_millis(5),
            },
            "c",
        );
        let edges = inj.poll(SimTime::ZERO, 0);
        assert_eq!(edges.len(), 2); // a and c activate
        assert_eq!(inj.active(), vec!["a", "c"]);
        let edges = inj.poll(SimTime::from_millis(6), 0);
        assert_eq!(edges, vec![Transition::Deactivated("c")]);
        assert_eq!(inj.len(), 3);
        assert!(!inj.is_empty());
    }
}
