//! Resource-stress faults: the TASS stress-testing approach.
//!
//! Paper Sect. 4.7: stress testing "artificially takes away shared
//! resources, such as CPU or bus bandwidth, to simulate the occurrence of
//! errors or the addition of an additional resource user"; the software
//! CPU eater "is already included in the current development software and
//! can be activated by system testers".

use serde::{Deserialize, Serialize};
use simkit::resource::PortId;
use simkit::{Bus, Cpu, MemoryArbiter, MemoryRequest, SimDuration, SimTime, TaskId};

/// The CPU eater: a periodic high-priority job that consumes a configured
/// fraction of one processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuEater {
    /// The eater's task id (distinct from application tasks).
    pub task: TaskId,
    /// Release period.
    pub period: SimDuration,
    /// Fraction of the CPU to consume, `(0, 1)`.
    pub fraction: f64,
    /// Priority (0 = highest; testers usually run it above the
    /// application to model a worst case).
    pub priority: u8,
}

impl CpuEater {
    /// Creates an eater consuming `fraction` of a CPU.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn new(task: TaskId, period: SimDuration, fraction: f64, priority: u8) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1), got {fraction}"
        );
        assert!(!period.is_zero(), "period must be positive");
        CpuEater {
            task,
            period,
            fraction,
            priority,
        }
    }

    /// Work consumed per period.
    pub fn wcet(&self) -> SimDuration {
        self.period.mul_f64(self.fraction)
    }

    /// Releases the eater's jobs for the window `[from, to)` into `cpu`.
    ///
    /// Returns the number of jobs released.
    pub fn release_into(&self, cpu: &mut Cpu, from: SimTime, to: SimTime) -> u32 {
        let mut n = 0;
        let period_ns = self.period.as_nanos();
        let first = from.as_nanos().div_ceil(period_ns) * period_ns;
        let mut t = SimTime::from_nanos(first);
        while t < to {
            cpu.release(t, self.task, self.wcet(), self.priority, t + self.period);
            n += 1;
            t += self.period;
        }
        n
    }
}

/// The bus eater: steals a fraction of interconnect bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusEater {
    /// Fraction of bandwidth to steal, `[0, 1)`.
    pub fraction: f64,
}

impl BusEater {
    /// Creates a bus eater.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction < 1`.
    pub fn new(fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
        BusEater { fraction }
    }

    /// Applies the theft to a bus.
    pub fn apply(&self, bus: &mut Bus) {
        bus.set_stolen_fraction(self.fraction);
    }

    /// Removes the theft.
    pub fn remove(&self, bus: &mut Bus) {
        bus.set_stolen_fraction(0.0);
    }
}

/// The memory hog: floods a memory-arbiter port with requests, inflating
/// other ports' latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryHog {
    /// The port the hog issues from.
    pub port: PortId,
    /// Requests per issue burst.
    pub requests_per_burst: u32,
    /// Bursts per request.
    pub bursts_each: u32,
}

impl MemoryHog {
    /// Creates a hog.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(port: PortId, requests_per_burst: u32, bursts_each: u32) -> Self {
        assert!(requests_per_burst > 0 && bursts_each > 0);
        MemoryHog {
            port,
            requests_per_burst,
            bursts_each,
        }
    }

    /// Issues one burst of hog traffic at `now`.
    pub fn issue(&self, arbiter: &mut MemoryArbiter, now: SimTime) {
        for _ in 0..self.requests_per_burst {
            arbiter.request(
                now,
                MemoryRequest {
                    port: self.port,
                    bursts: self.bursts_each,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SlotTable;

    #[test]
    fn cpu_eater_consumes_configured_fraction() {
        let eater = CpuEater::new(TaskId(99), SimDuration::from_millis(10), 0.5, 0);
        assert_eq!(eater.wcet(), SimDuration::from_millis(5));
        let mut cpu = Cpu::new("c");
        let n = eater.release_into(&mut cpu, SimTime::ZERO, SimTime::from_millis(100));
        assert_eq!(n, 10);
        cpu.advance_to(SimTime::from_millis(100));
        assert!((cpu.stats().utilization() - 0.5).abs() < 0.01);
    }

    #[test]
    fn cpu_eater_starves_lower_priority_work() {
        let eater = CpuEater::new(TaskId(99), SimDuration::from_millis(10), 0.8, 0);
        let mut cpu = Cpu::new("c");
        // Application job: 5ms of work, priority 5, deadline 10ms.
        cpu.release(
            SimTime::ZERO,
            TaskId(1),
            SimDuration::from_millis(5),
            5,
            SimTime::from_millis(10),
        );
        eater.release_into(&mut cpu, SimTime::ZERO, SimTime::from_millis(30));
        let done = cpu.advance_to(SimTime::from_millis(30));
        let app = done.iter().find(|j| j.task == TaskId(1)).unwrap();
        assert!(!app.deadline_met, "eater must push the app job past 10ms");
    }

    #[test]
    fn bus_eater_apply_remove() {
        let mut bus = Bus::new(1_000_000);
        let eater = BusEater::new(0.75);
        eater.apply(&mut bus);
        assert_eq!(bus.stolen_fraction(), 0.75);
        eater.remove(&mut bus);
        assert_eq!(bus.stolen_fraction(), 0.0);
    }

    #[test]
    fn memory_hog_inflates_victim_latency() {
        let ports = [PortId(0), PortId(1)];
        let table = SlotTable::round_robin(&ports);
        let slot = SimDuration::from_micros(10);
        // Victim alone.
        let mut clean = MemoryArbiter::new(table.clone(), slot);
        let t_clean = clean.request(
            SimTime::ZERO,
            MemoryRequest {
                port: PortId(1),
                bursts: 1,
            },
        );
        // Victim behind a hog on its own port queue? No — hog uses port 0,
        // but TDM isolates ports, so same-table latency is unchanged. The
        // hog hurts when it shares the port (DMA behind the CPU's port).
        let mut hogged = MemoryArbiter::new(table, slot);
        let hog = MemoryHog::new(PortId(1), 5, 1);
        hog.issue(&mut hogged, SimTime::ZERO);
        let t_hogged = hogged.request(
            SimTime::ZERO,
            MemoryRequest {
                port: PortId(1),
                bursts: 1,
            },
        );
        assert!(
            t_hogged > t_clean,
            "hog must delay the victim: {t_hogged} vs {t_clean}"
        );
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1)")]
    fn cpu_eater_rejects_full_theft() {
        let _ = CpuEater::new(TaskId(0), SimDuration::from_millis(1), 1.0, 0);
    }
}
