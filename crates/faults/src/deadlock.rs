//! Circular-wait injection.

/// Builds the wait edges of a circular wait among `tasks` (each waits on
/// the next, the last on the first) — feed these into a wait-for graph to
/// create a detectable deadlock.
///
/// Returns an empty list for fewer than one task.
///
/// ```
/// use faults::deadlock::cycle_edges;
/// let edges = cycle_edges(&["decoder", "scaler", "mixer"]);
/// assert_eq!(edges.len(), 3);
/// assert_eq!(edges[2], ("mixer".to_owned(), "decoder".to_owned()));
/// ```
pub fn cycle_edges(tasks: &[&str]) -> Vec<(String, String)> {
    if tasks.is_empty() {
        return Vec::new();
    }
    (0..tasks.len())
        .map(|i| (tasks[i].to_owned(), tasks[(i + 1) % tasks.len()].to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(cycle_edges(&[]).is_empty());
    }

    #[test]
    fn single_task_self_wait() {
        assert_eq!(cycle_edges(&["a"]), vec![("a".to_owned(), "a".to_owned())]);
    }

    #[test]
    fn pair_cycle() {
        let e = cycle_edges(&["a", "b"]);
        assert_eq!(
            e,
            vec![
                ("a".to_owned(), "b".to_owned()),
                ("b".to_owned(), "a".to_owned())
            ]
        );
    }
}
