//! Fault activation schedules.

use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimRng, SimTime};

/// When a fault is active.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Schedule {
    /// Active from `at` onward (a permanent fault appearing at `at`).
    From {
        /// Activation instant.
        at: SimTime,
    },
    /// Active inside the window `[from, to)` (a transient fault).
    Between {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
    },
    /// Active once `count` events have been processed.
    AfterEvents {
        /// Event-count threshold.
        count: u64,
    },
    /// Active periodically: within the first `duty` of every `period`
    /// (intermittent contact, thermal cycling).
    Periodic {
        /// Cycle length.
        period: SimDuration,
        /// Active prefix of each cycle.
        duty: SimDuration,
    },
    /// Always active.
    Always,
    /// Never active (the control arm of an experiment).
    Never,
}

impl Schedule {
    /// True if the fault is active at `now` with `events` processed.
    pub fn is_active(&self, now: SimTime, events: u64) -> bool {
        match self {
            Schedule::From { at } => now >= *at,
            Schedule::Between { from, to } => now >= *from && now < *to,
            Schedule::AfterEvents { count } => events >= *count,
            Schedule::Periodic { period, duty } => {
                let phase = now.as_nanos() % period.as_nanos().max(1);
                phase < duty.as_nanos()
            }
            Schedule::Always => true,
            Schedule::Never => false,
        }
    }

    /// A deterministic transient window spanning `[from_frac, to_frac)`
    /// of `horizon` — the scorecard grid derives every cell's fault
    /// phase this way (from the rep index, not an RNG draw), so cell
    /// results are a pure function of the cell's coordinates.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= from_frac < to_frac <= 1.0`.
    pub fn window_fraction(horizon: SimTime, from_frac: f64, to_frac: f64) -> Schedule {
        assert!(
            (0.0..1.0).contains(&from_frac) && from_frac < to_frac && to_frac <= 1.0,
            "window fractions must satisfy 0 <= from < to <= 1: [{from_frac}, {to_frac})"
        );
        let span = horizon.as_nanos() as f64;
        Schedule::Between {
            from: SimTime::from_nanos((span * from_frac) as u64),
            to: SimTime::from_nanos((span * to_frac) as u64),
        }
    }

    /// A random transient window of length `len` inside `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is at least `horizon`.
    pub fn random_window(horizon: SimTime, len: SimDuration, rng: &mut SimRng) -> Schedule {
        assert!(
            len.as_nanos() < horizon.as_nanos(),
            "window must fit inside horizon"
        );
        let start = rng.uniform_u64(0, horizon.as_nanos() - len.as_nanos());
        Schedule::Between {
            from: SimTime::from_nanos(start),
            to: SimTime::from_nanos(start + len.as_nanos()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn from_schedule() {
        let s = Schedule::From { at: ms(10) };
        assert!(!s.is_active(ms(9), 0));
        assert!(s.is_active(ms(10), 0));
        assert!(s.is_active(ms(1000), 0));
    }

    #[test]
    fn between_schedule() {
        let s = Schedule::Between {
            from: ms(10),
            to: ms(20),
        };
        assert!(!s.is_active(ms(9), 0));
        assert!(s.is_active(ms(10), 0));
        assert!(s.is_active(ms(19), 0));
        assert!(!s.is_active(ms(20), 0));
    }

    #[test]
    fn after_events_schedule() {
        let s = Schedule::AfterEvents { count: 5 };
        assert!(!s.is_active(ms(1000), 4));
        assert!(s.is_active(SimTime::ZERO, 5));
    }

    #[test]
    fn periodic_schedule() {
        let s = Schedule::Periodic {
            period: SimDuration::from_millis(10),
            duty: SimDuration::from_millis(3),
        };
        assert!(s.is_active(ms(0), 0));
        assert!(s.is_active(ms(2), 0));
        assert!(!s.is_active(ms(3), 0));
        assert!(!s.is_active(ms(9), 0));
        assert!(s.is_active(ms(12), 0));
    }

    #[test]
    fn always_never() {
        assert!(Schedule::Always.is_active(ms(0), 0));
        assert!(!Schedule::Never.is_active(ms(1000), 1000));
    }

    #[test]
    fn window_fraction_spans_the_requested_slice() {
        let horizon = SimTime::from_secs(4);
        let s = Schedule::window_fraction(horizon, 0.25, 0.75);
        assert!(!s.is_active(ms(999), 0));
        assert!(s.is_active(ms(1000), 0));
        assert!(s.is_active(ms(2999), 0));
        assert!(!s.is_active(ms(3000), 0));
    }

    #[test]
    #[should_panic(expected = "window fractions")]
    fn window_fraction_rejects_inverted_bounds() {
        let _ = Schedule::window_fraction(SimTime::from_secs(1), 0.7, 0.3);
    }

    #[test]
    fn random_window_is_deterministic_and_in_range() {
        let mut r1 = SimRng::seed(3);
        let mut r2 = SimRng::seed(3);
        let horizon = SimTime::from_secs(10);
        let len = SimDuration::from_secs(1);
        let a = Schedule::random_window(horizon, len, &mut r1);
        let b = Schedule::random_window(horizon, len, &mut r2);
        let (Schedule::Between { from: fa, to: ta }, Schedule::Between { from: fb, to: tb }) =
            (&a, &b)
        else {
            panic!("wrong variant");
        };
        assert_eq!((fa, ta), (fb, tb));
        assert!(*ta <= horizon);
        assert_eq!(ta.since(*fa), len);
    }
}
