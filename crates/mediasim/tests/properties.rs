//! Property-based robustness tests of the media-player SUO.

use mediasim::{MediaPlayer, MediaStream, PlayerConfig, PlayerState};
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};

fn arb_cmd() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["play", "pause", "stop", "seek", "garbage"])
}

proptest! {
    /// The player never panics and keeps position within stream bounds
    /// under arbitrary command/frame interleavings.
    #[test]
    fn player_invariants(
        frames in 1u64..200,
        corruption in 0.0f64..0.5,
        ops in prop::collection::vec((arb_cmd(), 0u64..5), 1..80)
    ) {
        let mut p = MediaPlayer::new(PlayerConfig::default());
        p.load(MediaStream::with_corruption(frames, corruption, 7));
        let mut now = SimTime::ZERO;
        for (cmd, play_frames) in ops {
            now += SimDuration::from_millis(40);
            p.command(now, cmd);
            p.run_frames(play_frames);
            now = p.now().max(now);
            prop_assert!(p.position() <= frames);
            if p.state() == PlayerState::Stopped && cmd == "stop" {
                prop_assert_eq!(p.position(), 0);
            }
        }
    }

    /// Conservation: over a full playback, rendered + late equals the
    /// stream length, regardless of corruption.
    #[test]
    fn full_playback_accounts_for_every_frame(
        frames in 1u64..300,
        corruption in 0.0f64..0.5,
        seed in 0u64..50
    ) {
        let mut p = MediaPlayer::new(PlayerConfig::default());
        p.load(MediaStream::with_corruption(frames, corruption, seed));
        p.command(SimTime::ZERO, "play");
        p.run_frames(frames + 10);
        prop_assert_eq!(p.frames_rendered() + p.frames_late(), frames);
        prop_assert_eq!(p.state(), PlayerState::Stopped);
    }

    /// A clean stream never renders late.
    #[test]
    fn clean_stream_never_late(frames in 1u64..300) {
        let mut p = MediaPlayer::new(PlayerConfig::default());
        p.load(MediaStream::clean(frames));
        p.command(SimTime::ZERO, "play");
        p.run_frames(frames);
        prop_assert_eq!(p.frames_late(), 0);
        prop_assert_eq!(p.frames_rendered(), frames);
    }
}
