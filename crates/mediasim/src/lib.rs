//! # mediasim — a media-player system under observation
//!
//! The Trader awareness framework was validated "by means of
//! model-to-model experiments" and then "used for awareness experiments
//! with the open source media player MPlayer, investigating both
//! correctness and performance issues" (paper Sect. 5). MPlayer itself is
//! out of scope for a deterministic reproduction; this crate provides the
//! equivalent SUO: a stage pipeline (demux → decode → postproc → render)
//! over a simulated processor, driven by play/pause/stop/seek commands,
//! with per-frame deadlines and corrupt-stream tolerance.
//!
//! * [`MediaStream`] — a synthetic stream with seeded corruption;
//! * [`MediaPlayer`] — the player SUO emitting state and performance
//!   observations;
//! * [`player_spec_machine`] — the specification model of the player's
//!   control behaviour (for the correctness half of E8);
//! * performance issues surface as late frames, caught by the awareness
//!   watchdog / timed comparisons (the performance half).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod player;
pub mod stream;

pub use model::player_spec_machine;
pub use player::{MediaPlayer, PlayerConfig, PlayerState};
pub use stream::MediaStream;
