//! The media-player SUO.

use crate::stream::MediaStream;
use observe::{ObsValue, Observation, ObservationKind};
use serde::{Deserialize, Serialize};
use simkit::{Cpu, SimDuration, SimTime, TaskId};

/// The demux stage task.
const TASK_DEMUX: TaskId = TaskId(10);
/// The decode stage task.
const TASK_DECODE: TaskId = TaskId(11);
/// The postprocessing stage task.
const TASK_POSTPROC: TaskId = TaskId(12);
/// The render stage task.
const TASK_RENDER: TaskId = TaskId(13);

/// Player control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlayerState {
    /// Nothing loaded / stopped.
    Stopped,
    /// Playing frames.
    Playing,
    /// Paused mid-stream.
    Paused,
}

impl PlayerState {
    /// The state's observable name.
    pub fn as_str(self) -> &'static str {
        match self {
            PlayerState::Stopped => "stopped",
            PlayerState::Playing => "playing",
            PlayerState::Paused => "paused",
        }
    }
}

/// Player timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerConfig {
    /// Frame period.
    pub frame_period: SimDuration,
    /// Demux cost per frame.
    pub demux_wcet: SimDuration,
    /// Decode cost per clean frame.
    pub decode_wcet: SimDuration,
    /// Extra decode factor for corrupt frames (error concealment).
    pub corrupt_decode_factor: f64,
    /// Postprocessing cost per frame.
    pub postproc_wcet: SimDuration,
    /// Render cost per frame.
    pub render_wcet: SimDuration,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            frame_period: SimDuration::from_millis(40),
            demux_wcet: SimDuration::from_millis(2),
            decode_wcet: SimDuration::from_millis(18),
            corrupt_decode_factor: 2.2,
            postproc_wcet: SimDuration::from_millis(8),
            render_wcet: SimDuration::from_millis(4),
        }
    }
}

/// The media-player system under observation.
///
/// ```
/// use mediasim::{MediaPlayer, MediaStream, PlayerConfig, PlayerState};
/// use simkit::SimTime;
///
/// let mut p = MediaPlayer::new(PlayerConfig::default());
/// p.load(MediaStream::clean(10));
/// p.command(SimTime::ZERO, "play");
/// assert_eq!(p.state(), PlayerState::Playing);
/// let obs = p.run_frames(10);
/// assert!(obs.iter().any(|o| o.as_output().is_some()));
/// assert_eq!(p.frames_rendered(), 10);
/// ```
#[derive(Debug)]
pub struct MediaPlayer {
    config: PlayerConfig,
    cpu: Cpu,
    state: PlayerState,
    stream: Option<MediaStream>,
    position: u64,
    now: SimTime,
    rendered: u64,
    late: u64,
    dropped: u64,
    pause_ignored: bool,
}

impl MediaPlayer {
    /// Creates a stopped player.
    pub fn new(config: PlayerConfig) -> Self {
        MediaPlayer {
            config,
            cpu: Cpu::new("media-cpu"),
            state: PlayerState::Stopped,
            stream: None,
            position: 0,
            now: SimTime::ZERO,
            rendered: 0,
            late: 0,
            dropped: 0,
            pause_ignored: false,
        }
    }

    /// Injects the control fault used in the awareness validation: pause
    /// commands are silently dropped (a lost event registration).
    pub fn set_pause_ignored(&mut self, ignored: bool) {
        self.pause_ignored = ignored;
    }

    /// Loads a stream (stops playback).
    pub fn load(&mut self, stream: MediaStream) {
        self.stream = Some(stream);
        self.position = 0;
        self.state = PlayerState::Stopped;
    }

    /// Control state.
    pub fn state(&self) -> PlayerState {
        self.state
    }

    /// Frames rendered on time so far.
    pub fn frames_rendered(&self) -> u64 {
        self.rendered
    }

    /// Frames rendered late (visible stutter).
    pub fn frames_late(&self) -> u64 {
        self.late
    }

    /// Frames dropped (unconcealable corruption).
    pub fn frames_dropped(&self) -> u64 {
        self.dropped
    }

    /// Current stream position (frame index).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The player's processor (for stress injection).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Handles a control command (`play`, `pause`, `stop`, `seek`),
    /// returning the observations it produces.
    ///
    /// Unknown commands are ignored (robustness: the real framework must
    /// tolerate unexpected input).
    pub fn command(&mut self, now: SimTime, cmd: &str) -> Vec<Observation> {
        self.now = self.now.max(now);
        let before = self.state;
        match (cmd, self.state) {
            ("play", PlayerState::Stopped) | ("play", PlayerState::Paused)
                if self.stream.is_some() =>
            {
                self.state = PlayerState::Playing;
            }
            ("pause", PlayerState::Playing) if !self.pause_ignored => {
                self.state = PlayerState::Paused;
            }
            ("pause", PlayerState::Paused) => self.state = PlayerState::Playing,
            ("stop", _) => {
                self.state = PlayerState::Stopped;
                self.position = 0;
            }
            ("seek", PlayerState::Playing) | ("seek", PlayerState::Paused) => {
                // Seek to stream midpoint (a deterministic stand-in).
                if let Some(s) = &self.stream {
                    self.position = s.frames() / 2;
                }
            }
            _ => {}
        }
        let mut obs = vec![Observation::new(
            self.now,
            "player",
            ObservationKind::KeyPress {
                key: cmd.to_owned(),
                code: None,
            },
        )];
        if self.state != before || cmd == "stop" {
            obs.push(self.state_output());
        }
        obs
    }

    fn state_output(&self) -> Observation {
        Observation::new(
            self.now,
            "player",
            ObservationKind::Output {
                name: "player.state".into(),
                value: ObsValue::Text(self.state.as_str().into()),
            },
        )
    }

    /// Plays up to `n` frame periods, returning observations (rendered
    /// frame heartbeats with their lateness, drops, end-of-stream).
    pub fn run_frames(&mut self, n: u64) -> Vec<Observation> {
        let mut obs = Vec::new();
        for _ in 0..n {
            if self.state != PlayerState::Playing {
                break;
            }
            let Some(stream) = &self.stream else { break };
            if self.position >= stream.frames() {
                self.state = PlayerState::Stopped;
                obs.push(self.state_output());
                break;
            }
            let start = self.now;
            let deadline = start + self.config.frame_period;
            let corrupt = stream.is_corrupt(self.position);
            let decode_cost = if corrupt {
                self.config
                    .decode_wcet
                    .mul_f64(self.config.corrupt_decode_factor)
            } else {
                self.config.decode_wcet
            };
            self.cpu
                .release(start, TASK_DEMUX, self.config.demux_wcet, 1, deadline);
            self.cpu
                .release(start, TASK_DECODE, decode_cost, 2, deadline);
            self.cpu
                .release(start, TASK_POSTPROC, self.config.postproc_wcet, 3, deadline);
            self.cpu
                .release(start, TASK_RENDER, self.config.render_wcet, 4, deadline);
            let done = self.cpu.advance_to(deadline);
            let render_done = done.iter().find(|j| j.task == TASK_RENDER);
            match render_done {
                Some(j) if j.deadline_met => {
                    self.rendered += 1;
                    obs.push(Observation::new(
                        j.completion,
                        "player",
                        ObservationKind::Output {
                            name: "frame.rendered".into(),
                            value: ObsValue::Num(self.position as f64),
                        },
                    ));
                }
                _ => {
                    // Late or unfinished: count and flush the pipeline
                    // (frame skip) so lateness does not cascade.
                    self.late += 1;
                    self.cpu.flush();
                    obs.push(Observation::new(
                        deadline,
                        "player",
                        ObservationKind::Value {
                            name: "frame.late".into(),
                            value: self.position as f64,
                        },
                    ));
                }
            }
            if corrupt && self.config.corrupt_decode_factor > 3.0 {
                self.dropped += 1;
            }
            self.position += 1;
            self.now = deadline;
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn player_with(frames: u64) -> MediaPlayer {
        let mut p = MediaPlayer::new(PlayerConfig::default());
        p.load(MediaStream::clean(frames));
        p
    }

    #[test]
    fn control_state_machine() {
        let mut p = player_with(10);
        assert_eq!(p.state(), PlayerState::Stopped);
        p.command(SimTime::ZERO, "play");
        assert_eq!(p.state(), PlayerState::Playing);
        p.command(SimTime::ZERO, "pause");
        assert_eq!(p.state(), PlayerState::Paused);
        p.command(SimTime::ZERO, "pause");
        assert_eq!(p.state(), PlayerState::Playing);
        p.command(SimTime::ZERO, "stop");
        assert_eq!(p.state(), PlayerState::Stopped);
        assert_eq!(p.position(), 0);
    }

    #[test]
    fn play_without_stream_stays_stopped() {
        let mut p = MediaPlayer::new(PlayerConfig::default());
        p.command(SimTime::ZERO, "play");
        assert_eq!(p.state(), PlayerState::Stopped);
    }

    #[test]
    fn unknown_command_ignored() {
        let mut p = player_with(5);
        let obs = p.command(SimTime::ZERO, "frobnicate");
        assert_eq!(p.state(), PlayerState::Stopped);
        assert_eq!(obs.len(), 1); // just the input record
    }

    #[test]
    fn clean_stream_renders_all_frames_on_time() {
        let mut p = player_with(50);
        p.command(SimTime::ZERO, "play");
        p.run_frames(50);
        assert_eq!(p.frames_rendered(), 50);
        assert_eq!(p.frames_late(), 0);
    }

    #[test]
    fn corrupt_frames_cause_lateness() {
        // 18 * 2.2 = 39.6ms decode + 14ms other stages > 40ms.
        let mut p = MediaPlayer::new(PlayerConfig::default());
        p.load(MediaStream::with_corruption(100, 0.3, 42));
        p.command(SimTime::ZERO, "play");
        p.run_frames(100);
        assert!(p.frames_late() > 10, "late={}", p.frames_late());
        assert!(p.frames_rendered() > 40);
    }

    #[test]
    fn end_of_stream_stops() {
        let mut p = player_with(3);
        p.command(SimTime::ZERO, "play");
        let obs = p.run_frames(10);
        assert_eq!(p.state(), PlayerState::Stopped);
        assert!(obs.iter().any(|o| {
            o.as_output()
                .map(|(n, v)| n == "player.state" && v.as_text() == Some("stopped"))
                .unwrap_or(false)
        }));
    }

    #[test]
    fn seek_jumps_to_midpoint() {
        let mut p = player_with(100);
        p.command(SimTime::ZERO, "play");
        p.command(SimTime::ZERO, "seek");
        assert_eq!(p.position(), 50);
    }

    #[test]
    fn paused_player_does_not_advance() {
        let mut p = player_with(10);
        p.command(SimTime::ZERO, "play");
        p.run_frames(2);
        p.command(p.now(), "pause");
        let obs = p.run_frames(5);
        assert!(obs.is_empty());
        assert_eq!(p.position(), 2);
    }
}
