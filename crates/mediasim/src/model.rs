//! The specification model of the player's control behaviour.

use statemachine::{Machine, MachineBuilder};

/// Builds the player specification machine: the desired-behaviour model
/// the awareness framework runs next to the [`MediaPlayer`](crate::MediaPlayer).
///
/// States mirror [`PlayerState`](crate::PlayerState); the observable is
/// `player.state`. The model is partial (paper Sect. 3): it covers the
/// control behaviour; performance (frame deadlines) is monitored
/// separately via watchdogs.
///
/// ```
/// use mediasim::player_spec_machine;
/// assert!(player_spec_machine().is_well_formed());
/// ```
pub fn player_spec_machine() -> Machine {
    MachineBuilder::new("player-spec")
        .state("stopped")
        .state("playing")
        .state("paused")
        .initial("stopped")
        .output("player.state")
        .on("stopped", "play", "playing", |t| {
            t.output_const("player.state", "playing")
        })
        .on("playing", "pause", "paused", |t| {
            t.output_const("player.state", "paused")
        })
        .on("paused", "pause", "playing", |t| {
            t.output_const("player.state", "playing")
        })
        .on("paused", "play", "playing", |t| {
            t.output_const("player.state", "playing")
        })
        .on("playing", "stop", "stopped", |t| {
            t.output_const("player.state", "stopped")
        })
        .on("paused", "stop", "stopped", |t| {
            t.output_const("player.state", "stopped")
        })
        .on("stopped", "stop", "stopped", |t| {
            t.output_const("player.state", "stopped")
        })
        .on("playing", "eos", "stopped", |t| {
            t.output_const("player.state", "stopped")
        })
        .build()
        .expect("player spec machine is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use statemachine::{Event, Executor, Value};

    #[test]
    fn model_matches_player_semantics() {
        let m = player_spec_machine();
        assert!(m.is_well_formed(), "{:?}", m.validate());
        let mut e = Executor::new(&m);
        e.start();
        e.step(&Event::plain("play"));
        assert_eq!(e.active_leaf_name(), "playing");
        e.step(&Event::plain("pause"));
        assert_eq!(e.active_leaf_name(), "paused");
        e.step(&Event::plain("pause"));
        assert_eq!(e.active_leaf_name(), "playing");
        e.step(&Event::plain("stop"));
        assert_eq!(e.active_leaf_name(), "stopped");
        assert_eq!(
            e.last_output("player.state"),
            Some(&Value::Str("stopped".into()))
        );
    }

    #[test]
    fn pause_in_stopped_is_ignored() {
        let m = player_spec_machine();
        let mut e = Executor::new(&m);
        e.start();
        e.step(&Event::plain("pause"));
        assert_eq!(e.active_leaf_name(), "stopped");
        assert!(e.last_output("player.state").is_none());
    }
}
