//! Synthetic media streams with seeded corruption.
//!
//! Customers "expect that products can cope with deviations from coding
//! standards or bad image quality" (paper Sect. 2): the corrupt frames in
//! a [`MediaStream`] are exactly such input faults.

use serde::{Deserialize, Serialize};
use simkit::SimRng;
use std::collections::BTreeSet;

/// A synthetic elementary stream: a frame count plus the set of corrupt
/// frame indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaStream {
    frames: u64,
    corrupt: BTreeSet<u64>,
}

impl MediaStream {
    /// A clean stream of `frames` frames.
    pub fn clean(frames: u64) -> Self {
        MediaStream {
            frames,
            corrupt: BTreeSet::new(),
        }
    }

    /// A stream where each frame is independently corrupt with
    /// probability `p` (deterministic from `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_corruption(frames: u64, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let mut rng = SimRng::seed(seed);
        let corrupt = (0..frames).filter(|_| rng.chance(p)).collect();
        MediaStream { frames, corrupt }
    }

    /// Marks one frame as corrupt.
    pub fn corrupt_frame(&mut self, index: u64) {
        if index < self.frames {
            self.corrupt.insert(index);
        }
    }

    /// Total frames.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Number of corrupt frames.
    pub fn corrupt_count(&self) -> usize {
        self.corrupt.len()
    }

    /// True if `index` is corrupt.
    pub fn is_corrupt(&self, index: u64) -> bool {
        self.corrupt.contains(&index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_has_no_corruption() {
        let s = MediaStream::clean(100);
        assert_eq!(s.frames(), 100);
        assert_eq!(s.corrupt_count(), 0);
        assert!(!s.is_corrupt(5));
    }

    #[test]
    fn corruption_is_seeded_and_bounded() {
        let a = MediaStream::with_corruption(1000, 0.1, 7);
        let b = MediaStream::with_corruption(1000, 0.1, 7);
        assert_eq!(a, b);
        assert!(a.corrupt_count() > 50 && a.corrupt_count() < 200);
    }

    #[test]
    fn manual_corruption() {
        let mut s = MediaStream::clean(10);
        s.corrupt_frame(3);
        s.corrupt_frame(99); // out of range: ignored
        assert!(s.is_corrupt(3));
        assert_eq!(s.corrupt_count(), 1);
    }
}
