//! Offline shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! marker (nothing is actually serialized in-process, and the build
//! environment cannot fetch the real serde). The shimmed `serde` crate
//! blanket-implements its marker traits, so these derives expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the shimmed trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the shimmed trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
