//! Offline shim for the `serde` crate.
//!
//! This workspace derives `Serialize`/`Deserialize` on its data types as
//! future-facing markers but never serializes in-process, and the build
//! environment cannot fetch the real serde. The shim keeps the derive
//! syntax compiling: the traits are empty markers blanket-implemented
//! for every type, and the derive macros (from the sibling
//! `serde_derive` shim) expand to nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (blanket-implemented for all types).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented for all types).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Serialization half (mirrors `serde::ser`).
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half (mirrors `serde::de`).
pub mod de {
    pub use crate::Deserialize;

    /// Marker for types deserializable without borrowing.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Probe {
        x: u32,
        s: String,
    }

    // The variants only need to *compile* under the no-op derives.
    #[allow(dead_code)]
    #[derive(Debug, Serialize, Deserialize)]
    enum ProbeEnum {
        A,
        B(u8),
        C { v: f64 },
    }

    fn assert_serialize<T: crate::Serialize>() {}

    #[test]
    fn derives_compile_and_traits_are_blanket() {
        assert_serialize::<Probe>();
        assert_serialize::<ProbeEnum>();
        let p = Probe {
            x: 1,
            s: "ok".into(),
        };
        assert_eq!(p.clone(), p);
    }
}
