//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, deterministic implementation of the small `rand`
//! surface it uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! stream of the real `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on determinism-per-seed and uniformity, both of
//! which hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // span == 0 encodes the full 2^64 range.
    if span == 0 {
        return rng.next_u64();
    }
    // Widening-multiply map; the 2^-64 bias is irrelevant here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 == full range
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = rng.next_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..=1000), b.gen_range(0u64..=1000));
        }
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
