//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this is a miniature
//! but genuine property-testing engine exposing the API surface the
//! workspace's `properties.rs` suites use: the [`proptest!`] macro,
//! `prop_assert*` macros, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`prop_oneof!`], `any::<T>()`, [`Just`],
//! `prop::collection::vec`, and `prop::sample::select`.
//!
//! Differences from the real engine: no shrinking and no persisted
//! regression corpus. Sampling is **deterministic**: each test derives
//! its RNG seed from the test's full module path (overridable with
//! `PROPTEST_SHIM_SEED`), so failures reproduce bit-identically and the
//! failing case is printed with the seed.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::rc::Rc;

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{Config, TestCaseError, TestRng};

/// `any::<T>()` strategies for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, usefully spread.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.min, self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (mirrors `proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.uniform_usize(0, self.options.len() - 1);
            self.options[i].clone()
        }
    }

    /// A strategy choosing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Boxes heterogeneous strategies into a uniform choice (used by
/// [`prop_oneof!`]).
pub fn one_of<T: Debug + 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
    let opts = Rc::new(options);
    BoxedStrategy::from_fn(move |rng| {
        let i = rng.uniform_usize(0, opts.len() - 1);
        opts[i].sample(rng)
    })
}

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::strategy::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case (it is re-drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Defines property tests.
///
/// Supports the subset of the real macro's grammar this workspace uses:
/// an optional `#![proptest_config(expr)]` header followed by test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run_property(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}
