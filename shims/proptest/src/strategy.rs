//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates recursive values: `recurse` receives a strategy for the
    /// inner level and builds one level on top; nesting is capped at
    /// `depth`. The `_desired_size` / `_expected_branch_size` hints of
    /// the real engine are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // Mix the base back in so sampled depth varies.
            level = crate::one_of(vec![base.clone(), deeper]);
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
