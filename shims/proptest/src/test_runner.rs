//! The case runner and its deterministic RNG.

use crate::strategy::Strategy;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Rejected cases tolerated before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case did not meet an assumption and is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic RNG for strategies (xoshiro256++, SplitMix64-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, span)`; `span` up to 2^64 (0 is invalid).
    pub fn below_u128(&mut self, span: u128) -> u64 {
        debug_assert!(span > 0 && span <= 1 << 64);
        if span == 1 << 64 {
            self.next_u64()
        } else {
            ((self.next_u64() as u128 * span) >> 64) as u64
        }
    }

    /// A uniform usize in `[lo, hi]`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below_u128((hi - lo) as u128 + 1) as usize
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `property` against `config.cases` sampled inputs.
///
/// The seed derives from the test name (override: `PROPTEST_SHIM_SEED`)
/// so runs are reproducible; failing cases panic with the case index,
/// seed, and the sampled input's `Debug` form.
pub fn run_property<S, P>(config: Config, name: &str, strategy: &S, property: P)
where
    S: Strategy,
    P: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SHIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let mut rng = TestRng::seed(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let case = strategy.sample(&mut rng);
        let desc = format!("{case:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| property(case)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(reason))) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("{name}: too many rejected cases ({rejected}); last reason: {reason}");
                }
            }
            Ok(Err(TestCaseError::Fail(message))) => {
                panic!(
                    "{name}: property failed at case {passed} (seed {seed}):\n  \
                     {message}\n  input: {desc}"
                );
            }
            Err(panic_payload) => {
                eprintln!(
                    "{name}: property panicked at case {passed} (seed {seed})\n  input: {desc}"
                );
                resume_unwind(panic_payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed(9);
        let mut b = TestRng::seed(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The engine runs the full grammar: config header, doc
        /// comments, multiple args, tuples, vec, oneof, map, assume.
        #[test]
        fn engine_smoke(
            x in 0u64..100,
            pair in (0u8..4, -5i64..5),
            items in prop::collection::vec(any::<bool>(), 0..10),
            label in prop_oneof![Just("a"), Just("b"), (0u32..3).prop_map(|_| "c")]
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4 && pair.1 >= -5 && pair.1 < 5);
            prop_assert!(items.len() < 10);
            prop_assert_ne!(x, 13);
            prop_assert_eq!(label.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case() {
        run_property(
            Config::with_cases(8),
            "shim::failures_panic_with_case",
            &(0u64..10),
            |x| {
                if x < 100 {
                    Err(TestCaseError::fail("always fails"))
                } else {
                    Ok(())
                }
            },
        );
    }
}
