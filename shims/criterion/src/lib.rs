//! Offline shim for the `criterion` crate.
//!
//! Implements the surface the `bench` crate uses — [`Criterion`] with
//! `benchmark_group` / `bench_function` / `iter` — as a plain wall-clock
//! harness: per bench it warms up, runs `sample_size` samples sized to
//! fit the measurement window, and prints min / mean / max per
//! iteration. No statistics beyond that, no HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for CLI compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the closing line (the real crate prints a summary here).
    pub fn final_summary(&mut self) {
        println!("(criterion shim: wall-clock timings, no statistical analysis)");
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under measurement.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            report: None,
        };
        f(&mut bencher);
        let id = id.into();
        match bencher.report {
            Some(r) => {
                println!(
                    "{}/{id}  time: [{} {} {}]  ({} iters)",
                    self.name,
                    fmt_ns(r.min_ns),
                    fmt_ns(r.mean_ns),
                    fmt_ns(r.max_ns),
                    r.iterations,
                );
            }
            None => println!("{}/{id}  (no measurement: iter was not called)", self.name),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Report {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
    iterations: u64,
}

/// Measures one routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine`, discarding its output via an opaque sink.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so all samples fit the measurement window.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut total_iters = 0u64;
        let (mut min_ns, mut max_ns, mut sum_ns) = (f64::INFINITY, 0f64, 0f64);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            sum_ns += ns;
            total_iters += iters_per_sample;
        }
        self.report = Some(Report {
            min_ns,
            mean_ns: sum_ns / self.sample_size as f64,
            max_ns,
            iterations: total_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
        c.final_summary();
    }
}
