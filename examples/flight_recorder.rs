//! Flight recorder: record a chaos campaign, drain the timeline.
//!
//! Arms the telemetry flight recorder on the closed arm of a short
//! seed-derived chaos campaign, audits the invariants with forensics,
//! and prints the drained timeline — every fault edge, detection,
//! repair, and channel incident as one JSONL line stamped with virtual
//! time — followed by the metrics readout. Same seed, same timeline,
//! byte for byte.
//!
//! ```sh
//! cargo run --example flight_recorder            # seed 0
//! cargo run --example flight_recorder -- 17      # replay seed 17
//! ```

use chaos::{assert_with_forensics, CampaignSpec};
use telemetry::Telemetry;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0);

    let telemetry = Telemetry::recording(4096);
    let spec = CampaignSpec::from_seed(seed);
    let outcome = spec.run_with(&telemetry);

    println!("== campaign seed {seed} ==");
    println!("closed {}", outcome.closed.summary());
    println!("open   {}", outcome.open.summary());

    // A tripped invariant would panic here with the timeline attached;
    // on a passing run we print it ourselves.
    assert_with_forensics(&outcome, &telemetry);

    println!();
    println!(
        "== flight recorder: {} event(s), {} overwritten ==",
        telemetry.events_len(),
        telemetry.overwritten()
    );
    print!("{}", telemetry.events_jsonl());

    println!();
    println!("== metrics ==");
    println!("{}", telemetry.metrics_json().render());
}
