//! Quickstart: close the dependability loop around a television.
//!
//! Builds the TV system-under-observation, schedules a transient
//! integration fault, and runs the same user scenario open-loop (the
//! traditional best-effort product) and closed-loop (the Trader run-time
//! awareness approach, paper Fig. 1). The closed loop detects the error
//! and repairs it; the open loop lets the user suffer.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use trader::prelude::*;

fn main() {
    // A 40-press user session: power on, tune, browse teletext, volume.
    let scenario = TimedScenario::teletext_session(40);

    // A transient fault: during a 100 ms window the decoder misses the
    // teletext mode-change notification (a real Trader case study).
    let fault_window = faults::Schedule::Between {
        from: SimTime::from_millis(250),
        to: SimTime::from_millis(350),
    };

    println!("== open loop (no run-time awareness) ==");
    let mut open = TvDependabilityLoop::open(42);
    open.schedule_fault(fault_window.clone(), TvFault::TeletextSyncLoss);
    let open_outcome = open.run(&scenario);
    println!("{}", open_outcome.summary());

    println!();
    println!("== closed loop (awareness monitor + correction) ==");
    let mut closed = TvDependabilityLoop::closed(42);
    closed.schedule_fault(fault_window, TvFault::TeletextSyncLoss);
    let closed_outcome = closed.run(&scenario);
    println!("{}", closed_outcome.summary());

    assert!(closed_outcome.failure_steps <= open_outcome.failure_steps);
    println!();
    println!(
        "closed loop removed {} user-visible failure steps",
        open_outcome.failure_steps - closed_outcome.failure_steps
    );
}
