//! E7: the user-perception study (paper Sect. 4.6) — stated importance vs
//! observed irritation, and the dominance of failure attribution.
//!
//! ```sh
//! cargo run --example perception_study
//! ```

use trader::experiments::e7_perception;
use trader::perception::{run_factorial, FactorialDesign};

fn main() {
    let report = e7_perception::run(42);
    println!("{report}");
    println!();
    println!("full factorial cell means (controlled setting):");
    let effects = run_factorial(&FactorialDesign::paper_design(), 200, 42);
    for ((function, attribution), mean) in &effects.cell_means {
        println!("  {function:<14} × {attribution:<9} -> {mean:.2}");
    }
    println!();
    println!("paper: users tolerate bad image quality (external attribution)");
    println!("       but are irritated by a failing swivel (internal).");
}
