//! Domain transfer: run-time awareness for a printer/copier.
//!
//! The paper's closing remark (Sect. 5): "the model-based run-time
//! awareness concept is also exploited in the domain of printer/copiers
//! at the company Océ in the context of the ESI-project Octopus."
//! This example shows exactly that portability: no TV code involved —
//! a fresh specification model of a printer's behaviour is written with
//! the same `statemachine` substrate and monitored with the same
//! `awareness` framework.
//!
//! ```sh
//! cargo run --example printer_awareness
//! ```

use trader::awareness::{CompareSpec, Configuration, MonitorBuilder};
use trader::observe::{ObsValue, Observation, ObservationKind};
use trader::prelude::*;
use trader::simkit::SimDuration;

/// The printer's specification model: warm-up takes at most 3 s, then
/// jobs print at up to 1 page/s; a jam must raise the jam indicator and
/// halt output.
fn printer_spec() -> Machine {
    MachineBuilder::new("printer-spec")
        .state("sleeping")
        .state("warming")
        .unstable("warming") // comparison off while thermally unstable
        .state("ready")
        .state("printing")
        .state("jammed")
        .initial("sleeping")
        .var("pages", 0)
        .output("printer.state")
        .output("pages.done")
        .output("jam.light")
        .on("sleeping", "wake", "warming", |t| {
            // Power-up lamp test: all indicators announce their state.
            t.output_const("printer.state", "warming")
                .output_const("jam.light", 0)
        })
        .after("warming", SimDuration::from_secs(3), "ready", |t| {
            t.output_const("printer.state", "ready")
        })
        .on("ready", "job", "printing", |t| {
            t.output_const("printer.state", "printing")
        })
        .on("printing", "page_out", "printing", |t| {
            t.assign("pages", Expr::var("pages").add(Expr::lit(1)))
                .output("pages.done", Expr::var("pages"))
        })
        .on("printing", "job_done", "ready", |t| {
            t.output_const("printer.state", "ready")
        })
        .on("printing", "jam", "jammed", |t| {
            t.output_const("printer.state", "jammed")
                .output_const("jam.light", 1)
        })
        .on("jammed", "cleared", "ready", |t| {
            t.output_const("printer.state", "ready")
                .output_const("jam.light", 0)
        })
        .build()
        .expect("printer model is structurally valid")
}

/// A tiny printer "firmware" — the SUO. The injected defect: the jam
/// indicator light is never switched on (a real Océ-class usability
/// fault: the machine stops, the user has no idea why).
struct Printer {
    pages: i64,
    jam_light_broken: bool,
}

impl Printer {
    fn emit(&self, at: SimTime, name: &str, value: ObsValue) -> Observation {
        Observation::new(
            at,
            "printer",
            ObservationKind::Output {
                name: name.to_owned(),
                value,
            },
        )
    }

    fn handle(&mut self, at: SimTime, event: &str) -> Vec<Observation> {
        let mut out = vec![Observation::key_press(at, "panel", event, None)];
        match event {
            "wake" => {
                out.push(self.emit(at, "printer.state", "warming".into()));
                // Lamp test: the jam light reports itself off.
                out.push(self.emit(at, "jam.light", ObsValue::Num(0.0)));
            }
            "job" => out.push(self.emit(at, "printer.state", "printing".into())),
            "page_out" => {
                self.pages += 1;
                out.push(self.emit(at, "pages.done", ObsValue::Num(self.pages as f64)));
            }
            "job_done" => out.push(self.emit(at, "printer.state", "ready".into())),
            "jam" => {
                out.push(self.emit(at, "printer.state", "jammed".into()));
                if !self.jam_light_broken {
                    out.push(self.emit(at, "jam.light", ObsValue::Num(1.0)));
                }
                // Broken: the light stays dark — an *omission* failure.
            }
            "cleared" => {
                out.push(self.emit(at, "printer.state", "ready".into()));
                out.push(self.emit(at, "jam.light", ObsValue::Num(0.0)));
            }
            _ => {}
        }
        out
    }
}

fn run(jam_light_broken: bool) -> usize {
    let machine = printer_spec();
    // Time-based comparison for the jam light: omissions need it.
    let cfg = Configuration::new()
        .observable(
            "jam.light",
            CompareSpec::exact().time_based(SimDuration::from_millis(500)),
        )
        .with_default_spec(CompareSpec::exact().with_max_consecutive(1));
    let mut monitor = MonitorBuilder::new(&machine).configuration(cfg).build();
    let mut printer = Printer {
        pages: 0,
        jam_light_broken,
    };

    let script: [(u64, &str); 9] = [
        (100, "wake"),
        (3200, "job"), // after warm-up
        (4000, "page_out"),
        (5000, "page_out"),
        (6000, "jam"),
        (9000, "cleared"),
        (9500, "job"),
        (10500, "page_out"),
        (11000, "job_done"),
    ];
    // The printer must also emit ready after its own warm-up, like the
    // model expects.
    let mut warmup_announced = false;
    for (ms, event) in script {
        let at = SimTime::from_millis(ms);
        if !warmup_announced && ms > 3100 {
            warmup_announced = true;
            let ready_at = SimTime::from_millis(3100);
            monitor.offer(&printer.emit(ready_at, "printer.state", "ready".into()));
        }
        for obs in printer.handle(at, event) {
            monitor.offer(&obs);
        }
        monitor.advance_to(at + SimDuration::from_millis(90));
    }
    monitor.advance_to(SimTime::from_millis(12_000));
    monitor.drain_errors().len()
}

fn main() {
    let machine = printer_spec();
    println!(
        "printer model: {} states, {} transitions, well-formed: {}",
        machine.states().len(),
        machine.transitions().len(),
        machine.is_well_formed()
    );
    let healthy = run(false);
    let broken = run(true);
    println!("healthy printer:        {healthy} errors detected");
    println!("broken jam indicator:   {broken} errors detected");
    assert_eq!(healthy, 0, "healthy printer must be silent");
    assert!(broken > 0, "the dark jam light must be detected");
    println!();
    println!("Same framework, new domain — the Octopus transfer the paper");
    println!("announces in its conclusion (Sect. 5).");
}
