//! Regenerates every figure/experiment table of the paper in one run —
//! the source of the numbers recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example paper_tables
//! ```

use trader::experiments::*;

fn main() {
    println!("================================================================");
    println!(" trader-rs — paper experiment tables");
    println!(" Brinksma & Hooman, DATE 2008 (Trader project)");
    println!("================================================================");
    println!();
    println!("{}", f1_closed_loop::run(40, 3));
    println!();
    println!("{}", f2_framework::run(4));
    println!();
    println!("{}", e1_spectra::run(27));
    println!();
    println!("{}", e2_comparator::run(9));
    println!();
    println!("{}", e3_mode_consistency::run());
    println!();
    println!("{}", e4_partial_recovery::run());
    println!();
    println!("{}", e5_load_balancing::run());
    println!();
    println!("{}", e6_cpu_eater::run());
    println!();
    println!("{}", e7_perception::run(42));
    println!();
    println!("{}", e8_model_to_model::run(9));
    println!();
    println!("{}", e9_observation_overhead::run());
    println!();
    println!("{}", e10_warning_priority::run(11));
    println!();
    println!("{}", e11_memory_arbiter::run());
    println!();
    println!("{}", e12_realtime_monitoring::run());
}
