//! The dependability scorecard: the coverage matrix, human-readable.
//!
//! Runs the scorecard grid — every TV fault class crossed with every
//! workload scenario under one or all recovery styles — and prints the
//! coverage matrix the CI gate snapshots: ✓ cells detected every rep
//! (with the p95 virtual-time MTTD), ◐ cells detected some reps, ✗
//! cells the awareness loop is blind to under that workload. The ✗
//! cells are the product: each one is a concrete detector gap with a
//! reproducing seed.
//!
//! ```sh
//! cargo run --example scorecard            # quick grid (micro-reboot)
//! cargo run --example scorecard -- full    # all three recovery styles
//! ```

use chaos::scorecard::e18_report;
use trader::experiments::e18_scorecard::E18Config;

fn main() {
    let full = std::env::args().nth(1).as_deref() == Some("full");
    let config = if full {
        E18Config::full()
    } else {
        E18Config::quick()
    };
    let report = e18_report(&config);
    println!("{report}");
    println!();
    println!(
        "matrix fingerprint {:016x} ({} across workers {:?})",
        report.matrix_fingerprint,
        if report.matrix_deterministic {
            "stable"
        } else {
            "UNSTABLE"
        },
        report.worker_counts,
    );
    let blind: Vec<String> = report
        .cells
        .iter()
        .filter(|c| c.detected == 0)
        .map(|c| c.key())
        .collect();
    if !blind.is_empty() {
        println!(
            "\n{} blind cell(s) — detector gaps to work on:",
            blind.len()
        );
        for key in blind {
            println!("  ✗ {key}");
        }
    }
    assert_eq!(
        report.twin_false_alarms, 0,
        "fault-free twins must stay silent"
    );
}
