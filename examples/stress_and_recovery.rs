//! Recovery and stress experiments: partial recovery (E4), load-balancing
//! task migration (E5), CPU-eater stress testing (E6), and adaptive memory
//! arbitration (E11) — the paper's Sect. 4.5 and 4.7 case studies.
//!
//! ```sh
//! cargo run --example stress_and_recovery
//! ```

use trader::experiments::{
    e11_memory_arbiter, e4_partial_recovery, e5_load_balancing, e6_cpu_eater,
};

fn main() {
    println!("{}", e4_partial_recovery::run());
    println!();
    println!("{}", e5_load_balancing::run());
    println!();
    println!("{}", e6_cpu_eater::run());
    println!();
    println!("{}", e11_memory_arbiter::run());
}
