//! Micro-reboot recovery: restart one wedged unit, not the whole TV.
//!
//! Runs the same closed-loop scenario — a mute-inversion fault pinned to
//! the audio unit — twice, under the two unit-recovery styles the loop
//! supports (Sect. 4.5's local-recovery principle):
//!
//! * **full restart** — the legacy reaction: every unit restarts, the
//!   TV is dark for seconds, and key presses aimed at perfectly healthy
//!   units vanish with it;
//! * **micro-reboot** — only the faulty unit is restored from its
//!   newest *validated* checkpoint (seed-derived fingerprint, torn and
//!   corrupt checkpoints fall back generation-by-generation) and the
//!   journalled post-checkpoint key presses are replayed, while the
//!   rest of the pipeline keeps serving.
//!
//! ```sh
//! cargo run --example micro_reboot           # seed 5
//! cargo run --example micro_reboot -- 11     # another seed
//! ```

use trader::prelude::*;

fn run(seed: u64, config: UnitRecoveryConfig) -> LoopOutcome {
    let mut looped = TvDependabilityLoop::closed(seed);
    looped.schedule_fault(
        faults::Schedule::Between {
            from: SimTime::from_millis(1650),
            to: SimTime::from_millis(1750),
        },
        TvFault::MuteInversion,
    );
    looped.unit_recovery(config);
    looped.run(&TimedScenario::teletext_session(30))
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(5);

    println!("== full restart (whole-TV reboot on a unit fault) ==");
    let full = run(seed, UnitRecoveryConfig::full_restart());
    println!("{}", full.summary());

    println!();
    println!("== micro-reboot (checkpoint restore + journal replay) ==");
    let micro = run(seed, UnitRecoveryConfig::micro_reboot());
    println!("{}", micro.summary());
    println!(
        "checkpoint generations: {}",
        micro
            .checkpoint_generations
            .iter()
            .map(|(unit, generation)| format!("{unit}:{generation}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    if let (Some(full_mttr), Some(micro_mttr)) = (full.reboot_mttr, micro.reboot_mttr) {
        println!();
        println!(
            "MTTR {full_mttr} -> {micro_mttr} ({:.1}x better); presses lost on \
             unaffected units {} -> {}",
            full_mttr.as_nanos() as f64 / micro_mttr.as_nanos() as f64,
            full.lost_presses_unaffected,
            micro.lost_presses_unaffected,
        );
    }
}
