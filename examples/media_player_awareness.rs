//! E8: awareness experiments with the media player (the paper's MPlayer
//! case, Sect. 5) — model-to-model validation, then correctness and
//! performance monitoring of the player SUO.
//!
//! ```sh
//! cargo run --example media_player_awareness
//! ```

use trader::experiments::e8_model_to_model;

fn main() {
    let report = e8_model_to_model::run(7);
    println!("{report}");
    println!();
    println!("paper: framework validated model-to-model; MPlayer experiments");
    println!("       investigate both correctness and performance issues.");
    println!(
        "here : aligned models raise {} errors over {} comparisons;",
        report.model_to_model_errors, report.model_to_model_comparisons
    );
    println!(
        "       the lost-pause fault raises {} errors (time-based comparison),",
        report.player_fault_errors
    );
    println!(
        "       and the corrupt stream raises {} watchdog timeouts ({} late frames).",
        report.perf_corrupt_timeouts, report.late_frames
    );
}
