//! E1 at paper scale: spectrum-based diagnosis of a teletext fault.
//!
//! Reproduces the experiment of paper Sect. 4.4: the TV's code is
//! instrumented into 60 000 basic blocks; a 27-key-press teletext scenario
//! is executed with an injected render fault; per key press the executed
//! blocks and the error verdict are recorded; similarity ranking localizes
//! the faulty block.
//!
//! ```sh
//! cargo run --example tv_teletext_diagnosis
//! ```

use trader::experiments::e1_spectra;

fn main() {
    let report = e1_spectra::run(27);
    println!("{report}");
    println!();
    println!("paper: 60 000 blocks, 27 key presses, 13 796 blocks executed, fault ranked #1");
    println!(
        "here : {} blocks, {} key presses, {} blocks executed, fault best-case rank #{} \
         (mid-tie {:.1}, wasted effort {:.4})",
        report.n_blocks,
        report.key_presses,
        report.blocks_executed,
        report.ochiai_best_case_rank,
        report.rank_by_coefficient["ochiai"],
        report.ochiai_wasted_effort,
    );
}
