//! Deterministic parallel campaign fleets: populations, not samples.
//!
//! Runs a seed-derived fleet of chaos campaigns through the parallel
//! fleet executor at several worker counts and shows the contract that
//! makes parallelism safe here: every worker count — including the
//! sequential oracle — produces the same per-campaign outcomes, the
//! same merged metrics registry, and the same 64-bit fleet fingerprint.
//! Scheduling order is free to vary; nothing observable does.
//!
//! ```sh
//! cargo run --example campaign_fleet           # 32 campaigns
//! cargo run --example campaign_fleet -- 256    # the regression population
//! ```

use chaos::fleet::FLEET_SEED_BASE;
use chaos::{fleet_specs, run_fleet};
use std::time::Instant;

fn main() {
    let population: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("population must be a usize"))
        .unwrap_or(32);
    let specs = fleet_specs(FLEET_SEED_BASE, population);
    println!(
        "== fleet: {population} campaigns, seeds {}..{} ==",
        FLEET_SEED_BASE,
        FLEET_SEED_BASE + population as u64
    );

    // 1. The sequential oracle: one thread, canonical order.
    let t = Instant::now();
    let oracle = run_fleet(&specs, 1);
    let oracle_ms = t.elapsed().as_secs_f64() * 1_000.0;
    oracle.assert_clean();
    let fingerprint = oracle.fingerprint();
    let metrics = oracle.merged_metrics().to_json().render();
    println!("sequential: {oracle_ms:.1} ms, fingerprint {fingerprint:016x}, all invariants clean");

    // 2. Parallel passes: work-stealing workers, scatter back to
    //    canonical slots. Everything observable must match the oracle.
    for workers in [2usize, 4, 8] {
        let t = Instant::now();
        let fleet = run_fleet(&specs, workers);
        let ms = t.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(fleet.fingerprint(), fingerprint, "fingerprint diverged");
        assert_eq!(
            fleet.merged_metrics().to_json().render(),
            metrics,
            "merged metrics diverged"
        );
        fleet.assert_clean();
        println!(
            "workers {workers}: {ms:.1} ms, fingerprint {:016x} (match), metrics match",
            fleet.fingerprint()
        );
    }

    println!("== byte-identical at every worker count ==");
}
