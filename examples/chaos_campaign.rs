//! Chaos campaign: a seed-derived multi-fault torture run of the loop.
//!
//! Derives an entire campaign — fault mix, schedules, boundary
//! disturbance (delay, jitter, loss), channel protocol, supervision,
//! resource stress — from one seed, runs the closed loop and its
//! open-loop twin, and audits the invariants. Pass a seed to replay a
//! specific campaign bit-for-bit:
//!
//! ```sh
//! cargo run --example chaos_campaign            # seed 0
//! cargo run --example chaos_campaign -- 17      # replay seed 17
//! ```

use chaos::{check_invariants, run_campaign};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0);

    let outcome = run_campaign(seed);
    let spec = &outcome.spec;

    println!("== campaign seed {seed} ==");
    println!(
        "scenario: {} presses ({:?} horizon)",
        spec.scenario_len,
        spec.horizon()
    );
    for plan in &spec.faults {
        println!("fault: {:?} on {:?}", plan.fault, plan.schedule);
    }
    println!(
        "boundary: delay {:?}, jitter {:?}, loss {:.2} — {} channels, supervision {}",
        spec.output_delay,
        spec.jitter,
        spec.loss,
        if spec.reliable { "reliable" } else { "bare" },
        if spec.supervised { "on" } else { "off" },
    );
    println!(
        "stress: cpu eater {:.0}%, bus eater {:.0}%, hog {}x{} bursts, {}-task deadlock",
        spec.stress.cpu_fraction * 100.0,
        spec.stress.bus_fraction * 100.0,
        spec.stress.hog_requests,
        spec.stress.hog_bursts,
        spec.stress.deadlock_tasks,
    );

    println!();
    println!("== outcome ==");
    for (name, arm) in [("closed", &outcome.closed), ("open", &outcome.open)] {
        println!("{name:6} {}", arm.summary());
    }
    let stress = &outcome.stress;
    println!(
        "stress: cpu {} jobs at {:.0}% load ({} deadline misses), bus {:?} -> {:?}, \
         victim latency {:?}, deadlock cycle {}",
        stress.cpu_completed,
        stress.cpu_utilization * 100.0,
        stress.cpu_deadline_misses,
        stress.bus_nominal,
        stress.bus_stressed,
        stress.hog_victim_latency,
        stress.deadlock_cycle_len,
    );

    println!();
    let violations = check_invariants(&outcome);
    if violations.is_empty() {
        println!(
            "invariants: all hold (fingerprint {:#018x})",
            outcome.fingerprint()
        );
    } else {
        println!("invariants VIOLATED:");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
