//! The active health observatory: one blind cell, before and after.
//!
//! E18's idle column is blind for every fault class — a fault the
//! workload never exercises never produces a comparator mismatch.
//! This example takes the canonical blind cell (`sleep-timer-lost`
//! under the idle workload) and runs it twice: passively, then with
//! the observatory on (idle-window liveness probes, the sleep-timer
//! deadline monitor, menu and swivel mode witnesses). With `-- full`
//! it re-runs the whole probed coverage matrix (the E19 experiment)
//! and prints the before/after column table.
//!
//! ```sh
//! cargo run --release --example active_probes           # one cell
//! cargo run --release --example active_probes -- full   # probed matrix
//! ```

use chaos::scorecard::{e19_report, CellSpec, RecoveryStyle, ScenarioKind};
use trader::experiments::e19_active_probes::E19Config;
use tvsim::TvFault;

fn cell(probes: bool) -> CellSpec {
    CellSpec {
        fault: TvFault::SleepTimerLost,
        scenario: ScenarioKind::Idle,
        recovery: RecoveryStyle::MicroReboot,
        reps: 3,
        scenario_len: 32,
        probes,
        adaptive: false,
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("full") {
        let report = e19_report(&E19Config::quick());
        println!("{report}");
        return;
    }

    println!("cell: sleep-timer-lost x idle x micro-reboot (seed-derived, 3 reps + twin)\n");
    for (label, probes) in [("passive", false), ("observatory on", true)] {
        let outcome = cell(probes).run();
        println!(
            "{label:>15}: detected {}/{} reps, twin detections {}, fingerprint {:016x}",
            outcome.reps.iter().filter(|r| r.detected).count(),
            outcome.reps.len(),
            outcome.twin_detections,
            outcome.fingerprint(),
        );
    }
    println!(
        "\nThe probes arm the sleep timer in an idle window; the deadline monitor\n\
         alarms when virtual time passes the announced fire time with no power-off.\n\
         The fault-free twin runs with the same probes and stays silent — the\n\
         coverage is free. Run with `-- full` for the whole probed matrix."
    );
}
