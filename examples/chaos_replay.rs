//! Trace-driven failure replay: from forensic dump back to a live run.
//!
//! Records a seed-derived chaos campaign with the flight recorder on,
//! captures its forensic JSONL dump (the artifact CI uploads when an
//! invariant trips), then hands *only the dump* to `chaos::replay` —
//! which parses the header, re-executes the campaign, and checks the
//! replayed fingerprint is byte-identical to the recorded one. A
//! tampered dump is replayed too, to show the mismatch is reported
//! honestly instead of papered over.
//!
//! ```sh
//! cargo run --example chaos_replay           # seed 7
//! cargo run --example chaos_replay -- 17     # another seed
//! ```

use chaos::{check_invariants, replay_dump, CampaignSpec, ForensicReport};
use telemetry::Telemetry;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(7);

    // 1. Run the campaign with the flight recorder armed and capture
    //    the forensic dump — one JSONL artifact, header + event tail.
    let telemetry = Telemetry::recording(4096);
    let outcome = CampaignSpec::from_seed(seed).run_with(&telemetry);
    let violations = check_invariants(&outcome);
    let report = ForensicReport::capture(&outcome, &telemetry, violations);
    let dump = report.to_jsonl();
    println!(
        "== forensic dump: seed {seed}, {} line(s) ==",
        dump.lines().count()
    );
    let header = dump.lines().next().expect("dump has a header");
    println!("{header}");

    // 2. Replay from the dump alone: the seed derives the campaign, the
    //    fingerprint seals the outcome.
    let replay = replay_dump(&dump).expect("dump parses");
    println!();
    println!("== replay ==");
    println!("{}", replay.render());
    assert!(replay.is_identical(), "engine drifted from its own dump");

    // 3. Tamper with the recorded fingerprint and replay again: the
    //    mismatch must be reported, not hidden.
    let tampered = dump.replacen(&replay.recorded_fingerprint, "deadbeefdeadbeef", 1);
    let caught = replay_dump(&tampered).expect("tampered dump still parses");
    println!();
    println!("== tampered dump ==");
    println!("{}", caught.render());
    assert!(!caught.is_identical(), "tampering must be caught");
}
