#!/bin/sh
# Aggregates every BENCH_*.json into BENCH_trajectory.json and, when a
# previous trajectory is passed (--prev <file>), gates the current one
# against it: correctness booleans must stay true, coverage must not
# shrink, regression counts must not grow. Exits nonzero on regression.
#
#   scripts/bench_trajectory.sh
#   scripts/bench_trajectory.sh --prev prev/BENCH_trajectory.json
set -eu
cd "$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)"

cargo run -q --release -p bench --bin bench_trajectory -- "$@"
