#!/bin/sh
# Tier-1 verification plus a chaos smoke: what CI runs on every change.
set -eu
cd "$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)"

echo "== format (rustfmt, check only) =="
cargo fmt --all --check

echo "== build (release) =="
cargo build --release

echo "== test (workspace) =="
cargo test -q

echo "== clippy (all targets, warnings are errors) =="
cargo clippy --all-targets -- -D warnings

echo "== chaos smoke: replay campaign seed 0 =="
cargo run -q --release --example chaos_campaign -- 0

echo "verify: OK"
